"""Domain decomposition: exact partitioning, grid queries, neighbours."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecompositionError
from repro.tida.box import Box
from repro.tida.decomposition import Decomposition


class TestGridDecomposition:
    def test_even_split(self):
        deco = Decomposition(domain=Box.from_shape((8, 8)), region_shape=(4, 4))
        assert deco.n_regions == 4
        assert deco.grid_shape == (2, 2)
        deco.validate_partition()

    def test_uneven_edges(self):
        deco = Decomposition(domain=Box.from_shape((10,)), region_shape=(4,))
        assert [b.shape[0] for b in deco.boxes] == [4, 4, 2]
        deco.validate_partition()

    def test_region_larger_than_domain(self):
        deco = Decomposition(domain=Box.from_shape((3, 3)), region_shape=(10, 10))
        assert deco.n_regions == 1
        assert deco.boxes[0].shape == (3, 3)

    def test_offset_domain(self):
        deco = Decomposition(domain=Box((5, 5), (9, 9)), region_shape=(2, 2))
        assert deco.boxes[0].lo == (5, 5)
        deco.validate_partition()

    def test_rank_mismatch(self):
        with pytest.raises(DecompositionError):
            Decomposition(domain=Box.from_shape((4, 4)), region_shape=(2,))

    def test_nonpositive_region_shape(self):
        with pytest.raises(DecompositionError):
            Decomposition(domain=Box.from_shape((4,)), region_shape=(0,))

    def test_empty_domain(self):
        with pytest.raises(DecompositionError):
            Decomposition(domain=Box((0,), (0,)), region_shape=(2,))

    @given(
        st.tuples(st.integers(1, 20), st.integers(1, 20)),
        st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    def test_property_exact_partition(self, domain_shape, region_shape):
        deco = Decomposition(domain=Box.from_shape(domain_shape), region_shape=region_shape)
        deco.validate_partition()  # raises on overlap/gap/escape

    @given(
        st.tuples(st.integers(1, 30), st.integers(1, 10)),
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
    )
    def test_property_index_coords_roundtrip(self, domain_shape, region_shape):
        deco = Decomposition(domain=Box.from_shape(domain_shape), region_shape=region_shape)
        for rid in range(deco.n_regions):
            assert deco.index(deco.coords(rid)) == rid


class TestByCount:
    def test_paper_configuration(self):
        """512^3 into 16 slabs along axis 0 — the Fig. 5 setup."""
        deco = Decomposition.by_count(Box.from_shape((512, 512, 512)), 16)
        assert deco.n_regions == 16
        assert all(b.shape == (32, 512, 512) for b in deco.boxes)
        deco.validate_partition()

    def test_uneven_count(self):
        deco = Decomposition.by_count(Box.from_shape((12,)), 5)
        assert deco.n_regions == 5
        assert sorted(b.shape[0] for b in deco.boxes) == [2, 2, 2, 3, 3]
        deco.validate_partition()

    def test_axis_selection(self):
        deco = Decomposition.by_count(Box.from_shape((4, 8)), 4, axis=1)
        assert all(b.shape == (4, 2) for b in deco.boxes)

    def test_too_many_regions(self):
        with pytest.raises(DecompositionError):
            Decomposition.by_count(Box.from_shape((4,)), 5)

    def test_nonpositive_count(self):
        with pytest.raises(DecompositionError):
            Decomposition.by_count(Box.from_shape((4,)), 0)

    def test_bad_axis(self):
        with pytest.raises(DecompositionError):
            Decomposition.by_count(Box.from_shape((4,)), 2, axis=1)

    @given(st.integers(1, 64), st.integers(1, 16))
    def test_property_by_count_exact(self, extent, n):
        if n > extent:
            return
        deco = Decomposition.by_count(Box.from_shape((extent,)), n)
        assert deco.n_regions == n
        deco.validate_partition()


class TestNeighbors:
    def test_1d_chain(self):
        deco = Decomposition.by_count(Box.from_shape((16,)), 4)
        assert deco.neighbors(0) == [1]
        assert sorted(deco.neighbors(1)) == [0, 2]
        assert deco.neighbors(3) == [2]

    def test_2d_grid_includes_diagonals(self):
        deco = Decomposition(domain=Box.from_shape((6, 6)), region_shape=(2, 2))
        center = deco.index((1, 1))
        assert len(deco.neighbors(center)) == 8
        corner = deco.index((0, 0))
        assert len(deco.neighbors(corner)) == 3

    def test_covering(self):
        deco = Decomposition.by_count(Box.from_shape((16,)), 4)
        probe = Box((3,), (9,))  # spans regions 0,1,2
        assert deco.covering(probe) == [0, 1, 2]

    def test_coords_out_of_range(self):
        deco = Decomposition.by_count(Box.from_shape((16,)), 4)
        with pytest.raises(DecompositionError):
            deco.coords(4)
        with pytest.raises(DecompositionError):
            deco.index((9,))
