"""Lookahead prefetch scheduling: software-pipelining the limited-memory
regime.

The paper hides transfers behind compute by splitting fields into
regions with per-slot streams (Figs. 5/7), but the runtime is still
*demand*-driven: a cold miss issues its H2D upload inside
``request_device`` at compute time, so the kernel's ``after=ready``
dependency eats the full transfer latency.  When ``compute()`` is driven
by a :class:`~repro.tida.tile_iterator.TileIterator`, the remaining
traversal order is known — so the next ``depth`` regions can be uploaded
on their slot streams *while the current region's kernel runs*, exactly
the CrystalGPU-style transparent prefetch (PAPERS.md).

The :class:`PrefetchScheduler` is deliberately conservative:

* it only acts when the iterator's schedule is known
  (``order="sequential"``); a shuffled traversal degrades to plain
  demand paging — no speculative uploads, no corruption;
* displacing live data for a prefetch is delegated to the eviction
  policy (only ``lookahead`` accepts, and only for occupants needed
  strictly later), so prefetching can never thrash the demand stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..tida.tile_iterator import TileIterator
    from .tile_acc import TileAcc

#: Lookahead depth used when prefetching is enabled without an explicit
#: ``prefetch_depth`` (deep enough to cover one transfer behind a kernel,
#: shallow enough not to flood the copy engine ahead of evictions).
DEFAULT_PREFETCH_DEPTH = 2


class PrefetchScheduler:
    """Issues speculative uploads for the next regions of a traversal.

    One scheduler serves a whole :class:`~repro.core.library.TidaAcc`;
    it is stateless between compute calls — the iterator carries the
    position, the managers carry the cache state.
    """

    def __init__(self, default_depth: int | None = None) -> None:
        if default_depth is not None and default_depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, got {default_depth}")
        self.default_depth = default_depth

    def resolve_depth(
        self, iterator: "TileIterator | None", override: int | None = None
    ) -> int:
        """Effective lookahead depth for one compute call.

        Explicit per-call ``override`` wins, then the library default,
        then :data:`DEFAULT_PREFETCH_DEPTH` — but always 0 when there is
        no iterator or its schedule is unknown (shuffled order), because
        speculation without a schedule would be a guess.
        """
        if iterator is None or not iterator.schedule_known:
            return 0
        if override is not None:
            return max(0, int(override))
        if self.default_depth is not None:
            return self.default_depth
        return DEFAULT_PREFETCH_DEPTH

    def feed_schedule(
        self, managers: Sequence["TileAcc"], iterator: "TileIterator | None"
    ) -> None:
        """Hand the remaining traversal order to schedule-aware policies.

        Called before placement decisions so a ``lookahead`` policy's
        next-use knowledge is exact for the current sweep."""
        if iterator is None or not iterator.schedule_known:
            return
        schedule = iterator.remaining_rids()
        for mgr in managers:
            mgr.set_schedule(schedule)

    def issue(
        self,
        managers: Sequence["TileAcc"],
        iterator: "TileIterator | None",
        depth: int,
    ) -> int:
        """Prefetch the next ``depth`` distinct regions across ``managers``.

        Called after the current region's kernel launch: the uploads
        queue behind it on other slots' streams and overlap with it on
        the copy engines.  Returns the number of uploads issued.
        """
        if depth <= 0 or iterator is None or not iterator.schedule_known:
            return 0
        # managers in degraded mode (OOM shrank their slot pool) opt out
        managers = [m for m in managers if m.prefetch_enabled]
        if not managers:
            return 0
        issued = 0
        for rid in iterator.upcoming_rids(depth):
            for mgr in managers:
                if mgr.prefetch(rid):
                    issued += 1
        return issued
