"""Command-line entry point: ``python -m repro <subcommand>``.

Subcommands:

* ``bench [--quick] [--out DIR]`` — run every paper experiment
  (delegates to :mod:`repro.bench.harness`);
* ``kernels`` — list the registered workload kernels;
* ``machine`` — print the default simulated testbed's calibration;
* ``trace [--steps N] [--shape X Y Z] [--memory-limit B] [--out FILE]``
  — run a small TiDA-acc heat solve and dump a run manifest: its
  operation trace in Chrome/Perfetto format (with counter tracks and
  decision marks) plus the runtime metrics snapshot.  Inspect with
  ``python -m repro.obs.report FILE``.
"""

from __future__ import annotations

import argparse
import sys

from .bench.harness import run_all
from .config import DEFAULT_MACHINE
from .kernels.registry import KERNELS


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    run_all(out, quick=args.quick)
    return 0


def _cmd_kernels(_args: argparse.Namespace) -> int:
    for name, factory in sorted(KERNELS.items()):
        spec = factory()
        print(f"{name:20s} bytes/cell={spec.bytes_per_cell:<6g} "
              f"flops/cell={spec.flops_per_cell:<6g} "
              f"sfu/cell={spec.sin_per_cell + spec.cos_per_cell + spec.sqrt_per_cell:g}")
    return 0


def _cmd_machine(_args: argparse.Namespace) -> int:
    m = DEFAULT_MACHINE
    print(f"machine      : {m.name}")
    print(f"cpu          : {m.cpu.name}  {m.cpu.dp_flops/1e9:.0f} GF DP, "
          f"{m.cpu.mem_bandwidth/1e9:.0f} GB/s")
    print(f"gpu          : {m.gpu.name}  {m.gpu.dp_flops/1e12:.2f} TF DP, "
          f"{m.gpu.mem_bandwidth/1e9:.0f} GB/s, "
          f"{m.gpu.memory_bytes/2**30:.0f} GiB "
          f"({m.gpu.allocatable_bytes/2**30:.1f} allocatable)")
    print(f"link         : {m.link.name}  H2D {m.link.h2d_bandwidth/1e9:.1f} GB/s, "
          f"D2H {m.link.d2h_bandwidth/1e9:.1f} GB/s, "
          f"pageable x{m.link.pageable_bandwidth_factor}")
    print(f"math codegen : {m.math.name}  sin={m.math.sin_cost:g} "
          f"cos={m.math.cos_cost:g} sqrt={m.math.sqrt_cost:g} flop-equivalents")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .baselines.tida_runners import run_tida_heat

    n_slots = None
    if args.memory_limit is not None:
        # the heat solve holds two ghosted fields whose slot buffers share
        # the capped device pool; TileAcc sizes each field's slots from
        # *free* memory alone, so split the budget here or the second
        # field's lazy allocations blow past the cap
        import math

        shape = tuple(args.shape)
        slab = math.ceil(shape[0] / args.regions)
        region_bytes = 8 * (slab + 2) * (shape[1] + 2) * (shape[2] + 2)
        n_slots = args.memory_limit // region_bytes // 2
        if n_slots < 1:
            print(f"error: --memory-limit {args.memory_limit} cannot hold one "
                  f"{region_bytes}-byte region slot per field (needs >= "
                  f"{2 * region_bytes})", file=sys.stderr)
            return 2
    r = run_tida_heat(
        shape=tuple(args.shape), steps=args.steps, n_regions=args.regions,
        device_memory_limit=args.memory_limit, n_slots=n_slots,
        check="observe",
    )
    # a run manifest: Chrome/Perfetto traceEvents (with counter tracks and
    # decision marks), the runtime metrics snapshot, and the causal DAG
    # the observing hazard checker recorded (obs.report --critpath input)
    from .check.dag import dag_to_json

    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "traceEvents": r.trace.to_chrome_trace(),
        "metrics": r.metrics,
        "dag": dag_to_json(r.dag or ()),
    }))
    n_tracks = len(r.trace.counter_tracks)
    print(f"{len(r.trace)} events + {n_tracks} counter tracks + "
          f"{len(r.dag or ())} DAG nodes from a "
          f"{args.steps}-step heat solve -> {path}")
    print("open https://ui.perfetto.dev (or chrome://tracing) and load the file,")
    print(f"or: python -m repro.obs.report {path} --critpath")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser("bench", help="run every paper experiment")
    p_bench.add_argument("--quick", action="store_true")
    p_bench.add_argument("--out", default="results")
    p_bench.set_defaults(fn=_cmd_bench)

    p_kernels = sub.add_parser("kernels", help="list workload kernels")
    p_kernels.set_defaults(fn=_cmd_kernels)

    p_machine = sub.add_parser("machine", help="print the simulated testbed")
    p_machine.set_defaults(fn=_cmd_machine)

    p_trace = sub.add_parser(
        "trace", help="dump a run manifest (Chrome trace + metrics) of a heat solve"
    )
    p_trace.add_argument("--steps", type=int, default=3)
    p_trace.add_argument("--shape", type=int, nargs=3, default=[128, 128, 128])
    p_trace.add_argument("--regions", type=int, default=8)
    p_trace.add_argument("--memory-limit", type=int, default=None,
                         help="device memory cap in bytes (Figs. 7/8 mode)")
    p_trace.add_argument("--out", default="results/heat_trace.json")
    p_trace.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
