"""CUDA runtime memory-management tests (malloc/mallocHost/managed/MemGetInfo)."""

import numpy as np
import pytest

from repro.config import GiB, k40m_pcie3
from repro.cuda.runtime import CudaRuntime
from repro.errors import CudaInvalidValueError, CudaMemoryAllocationError


class TestDeviceAlloc:
    def test_malloc_free_accounting(self, runtime):
        free0, total = runtime.mem_get_info()
        buf = runtime.malloc((1024,))
        free1, _ = runtime.mem_get_info()
        assert free0 - free1 == 8192
        runtime.free(buf)
        assert runtime.mem_get_info()[0] == free0

    def test_total_matches_allocatable(self, machine):
        rt = CudaRuntime(machine)
        _, total = rt.mem_get_info()
        assert total == machine.gpu.allocatable_bytes

    def test_device_memory_limit(self, machine):
        rt = CudaRuntime(machine, device_memory_limit=1000)
        with pytest.raises(CudaMemoryAllocationError):
            rt.malloc((1000,))  # 8000 bytes > limit
        rt.malloc((100,))      # 800 bytes fits

    def test_invalid_limit(self, machine):
        with pytest.raises(CudaInvalidValueError):
            CudaRuntime(machine, device_memory_limit=0)

    def test_oom_at_hardware_size(self, machine):
        rt = CudaRuntime(machine, functional=False)
        rt.malloc((10 * GiB // 8,))  # 10 GiB of the ~11.5 allocatable
        with pytest.raises(CudaMemoryAllocationError):
            rt.malloc((2 * GiB // 8,))

    def test_api_calls_cost_host_time(self, runtime):
        t0 = runtime.now
        runtime.malloc((8,))
        assert runtime.now > t0


class TestHostAlloc:
    def test_malloc_pinned_is_pinned(self, runtime):
        assert runtime.malloc_pinned((8,)).pinned

    def test_malloc_pageable_is_pageable(self, runtime):
        assert not runtime.malloc_pageable((8,)).pinned

    def test_fill(self, runtime):
        buf = runtime.malloc_pinned((4,), fill=2.5)
        assert np.all(buf.array == 2.5)

    def test_free_host(self, runtime):
        buf = runtime.malloc_pinned((8,))
        runtime.free_host(buf)
        assert buf.freed

    def test_host_memory_not_counted_against_device(self, runtime):
        free0, _ = runtime.mem_get_info()
        runtime.malloc_pinned((1024,))
        assert runtime.mem_get_info()[0] == free0


class TestManagedAlloc:
    def test_managed_reserves_device_memory(self, runtime):
        free0, _ = runtime.mem_get_info()
        buf = runtime.malloc_managed((1024,))
        assert runtime.mem_get_info()[0] == free0 - 8192
        runtime.free_managed(buf)
        assert runtime.mem_get_info()[0] == free0

    def test_managed_oom(self, machine):
        rt = CudaRuntime(machine, device_memory_limit=1000, functional=False)
        with pytest.raises(CudaMemoryAllocationError):
            rt.malloc_managed((1000,))

    def test_managed_double_free(self, runtime):
        buf = runtime.malloc_managed((8,))
        runtime.free_managed(buf)
        with pytest.raises(CudaInvalidValueError):
            runtime.free_managed(buf)

    def test_foreign_managed_free(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        buf = rt_a.malloc_managed((8,))
        with pytest.raises(CudaInvalidValueError):
            rt_b.free_managed(buf)

    def test_managed_starts_on_host(self, runtime):
        assert runtime.malloc_managed((8,)).location == "host"


class TestFunctionalFlag:
    def test_timing_only_paper_sizes_fit(self, machine):
        """512^3 doubles x2 allocate instantly without real memory."""
        rt = CudaRuntime(machine, functional=False)
        a = rt.malloc((512, 512, 512))
        b = rt.malloc((512, 512, 512))
        assert a.nbytes == b.nbytes == 512**3 * 8
        with pytest.raises(CudaInvalidValueError):
            _ = a.array

    def test_functional_buffers_are_arrays(self, runtime):
        buf = runtime.malloc((4, 4))
        assert buf.array.shape == (4, 4)
