"""Simulator-speed gate: ``python -m repro.bench.simspeed``.

Measures how fast the simulator itself runs — simulated device-ops per
wall-clock second — in the three execution modes (see DESIGN.md):

* **functional** — full numerics: every kernel body and copy moves real
  array data;
* **timing** — ``mode="timing"``: the same schedule with all array math
  and host/device copies skipped (byte-identical trace/DAG/metrics,
  asserted here before anything is timed);
* **replay** — no simulation at all: the recorded causal DAG rescheduled
  by :func:`~repro.obs.critpath.replay_machine`.

and how much those fast paths buy the two sweep surfaces that use them:

* the conformance matrix (``surrogate="replay"`` vs ``"full"``);
* machine autotuning (:func:`~repro.model.autotune.sweep_machines`,
  ``strategy="replay"`` vs ``"measure"``).

Exit codes: 1 when timing mode drifts from functional (trace, DAG,
counters, or elapsed differ on any workload), 2 when either sweep
speedup lands under the 10x floor.

The manifest (``--out``, default ``BENCH_simspeed.json``) is the input
format of ``python -m repro.obs.report``; CI regenerates it and gates
with ``--compare`` against the committed baseline.  Gated counters are
*clamped* ratios — ``min(measured, ceiling)`` with ceilings above the
10x floor — so CI wall-clock noise above the ceiling never moves the
committed numbers, while a real regression pulls a counter below its
ceiling and trips both the 10% compare gate and the hard floor.  The
raw, unclamped measurements live under the manifest's ungated
``"simspeed"`` key for human inspection.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

from ..baselines.tida_runners import run_tida_compute, run_tida_heat, run_tida_wave
from ..check.dag import dag_to_json
from ..check.explore import conformance_matrix
from ..config import DEFAULT_MACHINE, MachineSpec
from ..model.autotune import sweep_machines
from ..multi.heat import run_multi_gpu_heat
from ..obs.metrics import MetricsRegistry

#: Clamp ceilings for the gated ratio counters.  Chosen below what a
#: healthy run measures (so the committed baseline sits exactly at the
#: ceiling, immune to machines faster than CI) and above the floors the
#: hard gate enforces.  Do not change without regenerating
#: BENCH_simspeed.json.
TIMING_SPEEDUP_CEILING = 2.0
REPLAY_SPEEDUP_CEILING = 20.0
SWEEP_SPEEDUP_CEILING = 12.0
#: The tentpole acceptance bar: replay-surrogate sweeps must beat full
#: re-simulation by at least this factor.
SWEEP_SPEEDUP_FLOOR = 10.0

#: The fixed mode-throughput workload: limited-memory compute-intensive
#: (every step is the Fig. 7 eviction/upload/kernel pipeline, so the op
#: stream exercises both copy engines and the kernel path).
MODES_CONFIG = dict(
    shape=(144, 48, 48), steps=10, n_regions=12, n_slots=6,
    device_memory_limit=None,  # set from shape below
)

#: Small differential workloads: every one must be byte-identical
#: between functional and timing mode before any timing is trusted.
DRIFT_WORKLOADS: tuple[tuple[str, Callable[..., Any], dict[str, Any]], ...] = (
    ("heat", run_tida_heat, dict(shape=(32, 16, 16), steps=2, n_regions=8)),
    ("wave", run_tida_wave, dict(shape=(48, 48), steps=3, n_regions=8)),
    ("limited-memory", run_tida_compute,
     dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
          device_memory_limit=70_000)),
    ("multi-gpu", run_multi_gpu_heat,
     dict(shape=(32, 16, 16), steps=2, n_devices=2, regions_per_device=4)),
)


def _fingerprint(res: Any) -> tuple[str, str, str, float]:
    """Everything a timing-only run must reproduce bit-for-bit."""
    trace = json.dumps(res.trace.to_chrome_trace(), sort_keys=True)
    dag = json.dumps(dag_to_json(res.dag or []), sort_keys=True)
    metrics = res.metrics or {}
    counters = json.dumps(metrics.get("counters", metrics), sort_keys=True)
    return trace, dag, counters, float(res.elapsed)


def drift_check(workloads=DRIFT_WORKLOADS) -> list[str]:
    """Functional vs timing differential; returns drift descriptions."""
    failures: list[str] = []
    for name, fn, kw in workloads:
        fp = {}
        for mode in ("functional", "timing"):
            res = fn(functional=(mode == "functional"), mode=mode,
                     check="observe", **kw)
            fp[mode] = _fingerprint(res)
        for part, a, b in zip(
            ("trace", "dag", "counters", "elapsed"),
            fp["functional"], fp["timing"],
        ):
            if a != b:
                failures.append(f"{name}: {part} differs between modes")
    return failures


def measure_modes(config: dict[str, Any] | None = None) -> dict[str, float]:
    """Wall-time one workload in each mode; simulated device-ops/sec."""
    from ..obs.critpath import replay_machine

    kw = dict(MODES_CONFIG if config is None else config)
    kw.pop("device_memory_limit", None)
    # limit device memory so only half the regions fit: the op stream
    # then carries eviction write-backs as well as uploads and kernels
    import math

    cells = math.prod(kw["shape"])
    region_bytes = 8 * cells // kw["n_regions"]
    machine = DEFAULT_MACHINE
    wall: dict[str, float] = {}
    dag = None
    for mode in ("functional", "timing"):
        t0 = time.perf_counter()
        res = run_tida_compute(
            machine, functional=(mode == "functional"), mode=mode,
            check="observe",
            device_memory_limit=(kw["n_slots"] * region_bytes + 4096),
            **kw,
        )
        wall[mode] = time.perf_counter() - t0
        dag = res.dag
    n_ops = len(dag)
    t0 = time.perf_counter()
    replay_machine(dag, machine=machine, perturbed=machine)
    wall["replay"] = time.perf_counter() - t0
    out = {"device_ops": float(n_ops)}
    for mode, secs in wall.items():
        out[f"{mode}_wall_s"] = secs
        out[f"{mode}_ops_per_s"] = n_ops / secs if secs > 0 else float("inf")
    out["timing_speedup"] = wall["functional"] / wall["timing"]
    out["replay_speedup"] = wall["functional"] / wall["replay"]
    return out


def measure_conformance_sweep(
    *,
    timing_seeds=tuple(range(32)),
    **kwargs: Any,
) -> dict[str, float]:
    """Wall-time the conformance matrix, full vs replay surrogate."""
    kw = dict(
        evictions=("lru", "lookahead"), prefetch_depths=(1,),
        order_seeds=(None,), timing_seeds=timing_seeds,
        shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
        device_memory_limit=70_000,
    )
    kw.update(kwargs)
    wall: dict[str, float] = {}
    reports = {}
    for surrogate in ("full", "replay"):
        t0 = time.perf_counter()
        reports[surrogate] = conformance_matrix(
            "compute", surrogate=surrogate, **kw
        )
        wall[surrogate] = time.perf_counter() - t0
    if not all(r.ok for r in reports.values()):
        raise AssertionError(
            "conformance failed during simspeed measurement: "
            f"{[f for r in reports.values() for f in r.failures()]}"
        )
    legs = len(reports["full"].runs)
    return {
        "legs": float(legs),
        "full_wall_s": wall["full"],
        "replay_wall_s": wall["replay"],
        "speedup": wall["full"] / wall["replay"],
    }


def measure_machine_sweep(n_candidates: int = 96) -> dict[str, float]:
    """Wall-time a machine autotune sweep, measure vs replay strategy."""
    from ..check.explore import perturb_machine

    base = DEFAULT_MACHINE
    candidates: list[MachineSpec] = [base] + [
        perturb_machine(base, seed) for seed in range(1, n_candidates)
    ]

    def measure(machine: MachineSpec):
        return run_tida_compute(
            machine, check="observe",
            shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
            device_memory_limit=70_000,
        )

    wall: dict[str, float] = {}
    for strategy in ("measure", "replay"):
        t0 = time.perf_counter()
        sweep_machines(candidates, measure_result_fn=measure,
                       strategy=strategy, base=base)
        wall[strategy] = time.perf_counter() - t0
    return {
        "candidates": float(len(candidates)),
        "measure_wall_s": wall["measure"],
        "replay_wall_s": wall["replay"],
        "speedup": wall["measure"] / wall["replay"],
    }


def run(out: Path) -> int:
    failures = drift_check()
    if failures:
        for f in failures:
            print(f"FAIL drift: {f}", file=sys.stderr)
        return 1
    print("drift check: functional and timing runs byte-identical "
          f"on {len(DRIFT_WORKLOADS)} workloads")

    modes = measure_modes()
    print(f"device ops:            {modes['device_ops']:.0f}")
    for mode in ("functional", "timing", "replay"):
        print(f"{mode:<10} {modes[f'{mode}_wall_s']*1e3:9.1f} ms   "
              f"{modes[f'{mode}_ops_per_s']:12.0f} ops/s")
    print(f"timing speedup:        {modes['timing_speedup']:.2f}x")
    print(f"replay speedup:        {modes['replay_speedup']:.2f}x")

    conf = measure_conformance_sweep()
    print(f"conformance sweep:     {conf['legs']:.0f} legs, "
          f"full {conf['full_wall_s']:.2f} s vs replay "
          f"{conf['replay_wall_s']:.2f} s -> {conf['speedup']:.1f}x")
    mach = measure_machine_sweep()
    print(f"machine sweep:         {mach['candidates']:.0f} candidates, "
          f"measure {mach['measure_wall_s']:.2f} s vs replay "
          f"{mach['replay_wall_s']:.2f} s -> {mach['speedup']:.1f}x")

    bench = MetricsRegistry()
    gated = {
        "bench.simspeed.timing_speedup":
            min(modes["timing_speedup"], TIMING_SPEEDUP_CEILING),
        "bench.simspeed.replay_speedup":
            min(modes["replay_speedup"], REPLAY_SPEEDUP_CEILING),
        "bench.simspeed.conformance_sweep_speedup":
            min(conf["speedup"], SWEEP_SPEEDUP_CEILING),
        "bench.simspeed.machine_sweep_speedup":
            min(mach["speedup"], SWEEP_SPEEDUP_CEILING),
    }
    for name, value in gated.items():
        bench.counter(name).inc(value)

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "metrics": bench.snapshot(),
        "simspeed": {"modes": modes, "conformance_sweep": conf,
                     "machine_sweep": mach},
    }, indent=2) + "\n")
    print(f"wrote {len(gated)} gated counters to {out}")

    floor_misses = [
        f"{name} = {value:.1f}x < {SWEEP_SPEEDUP_FLOOR:.0f}x"
        for name, value in (
            ("conformance sweep", conf["speedup"]),
            ("machine sweep", mach["speedup"]),
        )
        if value < SWEEP_SPEEDUP_FLOOR
    ]
    if floor_misses:
        for miss in floor_misses:
            print(f"FAIL floor: {miss}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_simspeed.json",
                        help="run-manifest output path (default BENCH_simspeed.json)")
    args = parser.parse_args(argv)
    return run(Path(args.out))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
