"""Regular domain decomposition into regions (Fig. 2).

The domain is cut into a regular grid of regions of (at most) a
requested ``region_shape``; edge regions absorb the remainder.  The
decomposition knows the grid structure, so neighbour queries used by the
ghost exchange are O(3^ndim) instead of O(n_regions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product

from ..errors import DecompositionError
from .box import Box


@dataclass(frozen=True)
class Decomposition:
    """A regular grid of region boxes covering ``domain``."""

    domain: Box
    region_shape: tuple[int, ...]
    grid_shape: tuple[int, ...] = field(init=False)
    boxes: tuple[Box, ...] = field(init=False)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.region_shape)
        object.__setattr__(self, "region_shape", shape)
        if len(shape) != self.domain.ndim:
            raise DecompositionError(
                f"region_shape rank {len(shape)} != domain rank {self.domain.ndim}"
            )
        if any(s <= 0 for s in shape):
            raise DecompositionError(f"region_shape must be positive, got {shape}")
        if self.domain.is_empty:
            raise DecompositionError("cannot decompose an empty domain")
        grid = tuple(
            math.ceil(extent / s) for extent, s in zip(self.domain.shape, shape)
        )
        object.__setattr__(self, "grid_shape", grid)
        boxes = []
        for coords in product(*(range(g) for g in grid)):
            lo = tuple(
                dl + c * s for dl, c, s in zip(self.domain.lo, coords, shape)
            )
            hi = tuple(
                min(l + s, dh) for l, s, dh in zip(lo, shape, self.domain.hi)
            )
            boxes.append(Box(lo, hi))
        object.__setattr__(self, "boxes", tuple(boxes))

    @classmethod
    def by_count(cls, domain: Box, n_regions: int, *, axis: int = 0) -> "Decomposition":
        """Split ``domain`` into ``n_regions`` slabs along ``axis``.

        This is the paper's configuration style ("we used 16 regions"):
        one-dimensional slab decomposition of a 3-D grid.
        """
        if n_regions <= 0:
            raise DecompositionError(f"n_regions must be positive, got {n_regions}")
        if not 0 <= axis < domain.ndim:
            raise DecompositionError(f"axis {axis} out of range for rank {domain.ndim}")
        extent = domain.shape[axis]
        if n_regions > extent:
            raise DecompositionError(
                f"cannot make {n_regions} regions from extent {extent} on axis {axis}"
            )
        slab = math.ceil(extent / n_regions)
        shape = list(domain.shape)
        shape[axis] = slab
        deco = cls(domain=domain, region_shape=tuple(shape))
        if deco.n_regions != n_regions:
            # ceil split can produce fewer slabs (e.g. 10 cells / 4 regions
            # -> slab 3 -> 4 slabs; but 100/7 -> slab 15 -> 7 slabs). When it
            # does not, fall back to an uneven explicit split.
            deco = cls._uneven_by_count(domain, n_regions, axis)
        return deco

    @classmethod
    def _uneven_by_count(cls, domain: Box, n_regions: int, axis: int) -> "Decomposition":
        extent = domain.shape[axis]
        base, extra = divmod(extent, n_regions)
        cuts = [domain.lo[axis]]
        for i in range(n_regions):
            cuts.append(cuts[-1] + base + (1 if i < extra else 0))
        shape = list(domain.shape)
        shape[axis] = base + (1 if extra else 0)
        deco = cls(domain=domain, region_shape=tuple(shape))
        boxes = []
        for i in range(n_regions):
            lo = list(domain.lo)
            hi = list(domain.hi)
            lo[axis] = cuts[i]
            hi[axis] = cuts[i + 1]
            boxes.append(Box(tuple(lo), tuple(hi)))
        grid = [1] * domain.ndim
        grid[axis] = n_regions
        object.__setattr__(deco, "grid_shape", tuple(grid))
        object.__setattr__(deco, "boxes", tuple(boxes))
        return deco

    # -- queries --------------------------------------------------------------

    @property
    def n_regions(self) -> int:
        return len(self.boxes)

    def index(self, coords: tuple[int, ...]) -> int:
        """Region id of grid cell ``coords`` (C order)."""
        if len(coords) != len(self.grid_shape):
            raise DecompositionError("grid coords rank mismatch")
        idx = 0
        for c, g in zip(coords, self.grid_shape):
            if not 0 <= c < g:
                raise DecompositionError(f"grid coords {coords} outside grid {self.grid_shape}")
            idx = idx * g + c
        return idx

    def coords(self, region_id: int) -> tuple[int, ...]:
        """Grid coordinates of region ``region_id``."""
        if not 0 <= region_id < self.n_regions:
            raise DecompositionError(f"region id {region_id} out of range")
        coords = []
        rem = region_id
        for g in reversed(self.grid_shape):
            coords.append(rem % g)
            rem //= g
        return tuple(reversed(coords))

    def neighbors(self, region_id: int) -> list[int]:
        """Ids of regions adjacent (faces, edges, corners) to ``region_id``."""
        base = self.coords(region_id)
        out = []
        for offset in product(*((-1, 0, 1) for _ in self.grid_shape)):
            if all(o == 0 for o in offset):
                continue
            coords = tuple(b + o for b, o in zip(base, offset))
            if all(0 <= c < g for c, g in zip(coords, self.grid_shape)):
                out.append(self.index(coords))
        return out

    def covering(self, box: Box) -> list[int]:
        """Ids of all regions whose box intersects ``box``."""
        return [i for i, b in enumerate(self.boxes) if b.intersects(box)]

    def validate_partition(self) -> None:
        """Assert the boxes exactly tile the domain (used by tests).

        Containment + total-size + pairwise-disjointness together imply an
        exact cover; disjointness is checked by counting cell coverage, so
        validation is O(domain size) rather than O(n_regions^2).
        """
        import numpy as np

        total = sum(b.size for b in self.boxes)
        if total != self.domain.size:
            raise DecompositionError(
                f"regions cover {total} cells but domain has {self.domain.size}"
            )
        covered = np.zeros(self.domain.shape, dtype=np.uint8)
        for i, a in enumerate(self.boxes):
            if not self.domain.contains(a):
                raise DecompositionError(f"region {i} escapes the domain")
            covered[a.slices(origin=self.domain.lo)] += 1
        if covered.max(initial=0) > 1:
            raise DecompositionError("regions overlap")
