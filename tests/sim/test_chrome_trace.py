"""Chrome/Perfetto trace export."""

import json

from repro.sim.trace import Trace, TraceEvent


def make_trace():
    t = Trace()
    t.record("k1", "kernel", "compute", 0.0, 1e-3, stream=1, n_cells=100)
    t.record("up", "h2d", "h2d", 0.0, 5e-4, stream=2, nbytes=4096)
    return t


class TestChromeTrace:
    def test_events_have_required_fields(self):
        events = make_trace().to_chrome_trace()
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}

    def test_microsecond_conversion(self):
        events = make_trace().to_chrome_trace()
        k1 = next(e for e in events if e["name"] == "k1")
        assert k1["dur"] == 1000.0  # 1 ms -> 1000 us

    def test_lane_metadata_events(self):
        events = make_trace().to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"compute", "h2d"}

    def test_args_carry_stream_and_bytes(self):
        events = make_trace().to_chrome_trace()
        up = next(e for e in events if e["name"] == "up")
        assert up["args"]["stream"] == 2
        assert up["args"]["nbytes"] == 4096

    def test_save_is_valid_json(self, tmp_path):
        path = make_trace().save_chrome_trace(str(tmp_path / "t.json"))
        data = json.loads(open(path).read())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) == 4

    def test_empty_trace(self, tmp_path):
        path = Trace().save_chrome_trace(str(tmp_path / "e.json"))
        assert json.loads(open(path).read()) == {"traceEvents": []}


class TestRoundTrip:
    """save -> load -> save must reproduce the file byte-for-byte."""

    def make_full_trace(self):
        """Spans + counter tracks + decision marks, with awkward times."""
        t = Trace()
        # times deliberately not representable exactly in binary floating
        # point: the quantized-microsecond emit has to absorb the *1e6 /
        # /1e6 round-trip error
        t.record("k1", "kernel", "compute", 0.1, 0.1 + 1e-3 / 3, stream=1, n_cells=7)
        t.record("up", "h2d", "h2d", 1 / 3, 1 / 3 + 5e-4, stream=2, nbytes=4096)
        t.record("down", "d2h", "d2h", 0.7000000001, 0.9, stream=2, nbytes=128)
        t.record_counter("queue.h2d", 0.1, 1.0)
        t.record_counter("queue.h2d", 0.2 + 1e-7, 0.0)
        t.mark("evict", 1 / 7, field="u_old", slot=3)
        t.mark("iteration", 0.5, fields=["u_old", "u_new"])
        return t

    def test_save_load_save_is_byte_stable(self, tmp_path):
        t = self.make_full_trace()
        p1 = t.save_chrome_trace(str(tmp_path / "a.json"))
        loaded = Trace.from_chrome_trace(json.loads(open(p1).read())["traceEvents"])
        p2 = loaded.save_chrome_trace(str(tmp_path / "b.json"))
        reloaded = Trace.from_chrome_trace(json.loads(open(p2).read())["traceEvents"])
        p3 = reloaded.save_chrome_trace(str(tmp_path / "c.json"))
        assert open(p1, "rb").read() == open(p2, "rb").read()
        assert open(p2, "rb").read() == open(p3, "rb").read()

    def test_round_trip_preserves_counters_and_marks(self):
        t = self.make_full_trace()
        loaded = Trace.from_chrome_trace(t.to_chrome_trace())
        assert set(loaded.counter_tracks) == {"queue.h2d"}
        samples = loaded.counter_tracks["queue.h2d"]
        assert [v for _ts, v in samples] == [1.0, 0.0]
        assert [m["name"] for m in loaded.marks] == ["evict", "iteration"]
        assert loaded.marks[0]["args"] == {"field": "u_old", "slot": 3}
        assert loaded.marks[1]["args"] == {"fields": ["u_old", "u_new"]}

    def test_round_trip_preserves_spans(self):
        t = self.make_full_trace()
        loaded = Trace.from_chrome_trace(t.to_chrome_trace())
        assert len(loaded) == len(t)
        for a, b in zip(t, loaded):
            assert a.name == b.name and a.category == b.category
            assert a.lane == b.lane and a.stream == b.stream
            assert a.nbytes == b.nbytes
            # quantization grid is a picosecond: virtual times agree to
            # far better than any simulated duration
            assert abs(a.start - b.start) < 1e-12
            assert abs(a.end - b.end) < 1e-11

    def test_quantization_grid_is_picoseconds(self):
        t = Trace()
        t.record("k", "kernel", "compute", 1e-9 / 3, 2e-9 / 3)
        (e,) = [x for x in t.to_chrome_trace() if x["ph"] == "X"]
        # emitted microseconds sit on the 1e-6-us grid exactly
        assert e["ts"] == round(e["ts"], 6)
        assert e["dur"] == round(e["dur"], 6)


class TestCli:
    def test_machine_subcommand(self, capsys):
        from repro.__main__ import main
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "tesla-k40m" in out and "pcie" in out

    def test_kernels_subcommand(self, capsys):
        from repro.__main__ import main
        assert main(["kernels"]) == 0
        assert "heat" in capsys.readouterr().out

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--steps", "1", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert len(data["traceEvents"]) > 0
