#!/usr/bin/env python
"""Monitor a pipelined solve live: telemetry bus, watchdog, recorder.

Runs the tiled compute-intensive solver with the full live-observability
stack attached — a :class:`TelemetryBus` sampling every metric on the
virtual clock, the default :class:`Watchdog` detector set, and a
:class:`FlightRecorder` armed to dump ``incident.json`` on trouble —
then renders the recorded session with the ``repro.obs.watch`` panels
and prints the final health verdict.

Run:  python examples/watch_run.py [--size 128] [--regions 16]
          [--steps 3] [--degrade] [--out session.jsonl]

The default configuration is healthy (prefetching multi-slot streaming:
zero alerts).  ``--degrade`` re-runs it with a single slot and prefetch
disabled, which collapses compute/transfer overlap and makes the
watchdog raise ``overlap_collapse`` alerts — the same seeded scenario
the ``live-watchdog`` CI leg checks.

Inspect the session afterwards with
``python -m repro.obs.watch session.jsonl`` (add ``--follow`` while a
run is still writing it).
"""

import argparse

from repro.baselines import run_tida_compute
from repro.obs.live import FlightRecorder, TelemetryBus, Watchdog, default_detectors
from repro.obs.watch import parse_session, render


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128, help="cubic grid edge")
    parser.add_argument("--regions", type=int, default=16, help="region count")
    parser.add_argument("--steps", type=int, default=3, help="time steps")
    parser.add_argument("--degrade", action="store_true",
                        help="single slot, no prefetch: trigger the watchdog")
    parser.add_argument("--out", default="session.jsonl", metavar="FILE",
                        help="telemetry session JSONL (default session.jsonl)")
    args = parser.parse_args()

    bus = TelemetryBus(sample_interval=2e-4, jsonl=args.out)
    bus.add_subscriber(Watchdog(default_detectors(cooldown=2e-3)))
    bus.add_subscriber(FlightRecorder(incident_dir="incidents"))
    slots = dict(n_slots=1, prefetch_depth=0) if args.degrade else \
        dict(n_slots=4, prefetch_depth=2)
    run_tida_compute(
        shape=(args.size, args.size, args.size), steps=args.steps,
        n_regions=args.regions, functional=False, telemetry=bus, **slots,
    )
    bus.close()

    with open(args.out) as f:
        print(render(parse_session(f.read().splitlines())))
    health = bus.health()
    print(f"\nfinal health: {health['status']} "
          f"({health['samples']} samples, alerts={health['alerts']})")
    print(f"session written to {args.out}; replay with: "
          f"python -m repro.obs.watch {args.out}")


if __name__ == "__main__":
    main()
