"""Admission control: queueing instead of OOM, degrade, shed, reject.

The controller stands between ``submit`` and ``cudaMalloc``: injected
memory pressure turns would-be OOM crashes into queueing delay, a plan
that cannot fit the live budget is replanned at minimum slots under
``policy="degrade"``, a priority job that defers under ``policy="queue"``
evicts best-effort slots instead, and a job whose *minimum* footprint
exceeds an empty device is rejected at submission with a typed
:class:`~repro.errors.ServiceError` carrying tenant/job context.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.faults.plan import FaultPlan, FaultRule
from repro.service import (
    ADMIT,
    DEFER,
    DEGRADE,
    REJECT,
    AdmissionController,
    Service,
    run_solo,
)

HEAT_KW = {"shape": (32, 16, 16), "steps": 1, "seed": 0}


class TestQueueUnderPressure:
    def test_pressure_defers_instead_of_oom(self):
        # 20 GB of injected pressure dwarfs the K40m: nothing fits until
        # the window closes at t=10ms, then the job runs normally
        faults = FaultPlan([FaultRule(
            op="malloc", kind="pressure", oom_bytes=2 * 10**10, until_t=0.01,
        )])
        svc = Service(faults=faults)
        svc.add_tenant("t")
        jid = svc.submit("t", workload="heat", workload_kwargs=HEAT_KW, at=0.0)
        report = svc.run()
        svc.close()
        result = report.jobs[jid]
        assert result.admitted >= 0.01, "admitted while pressure was active"
        assert result.finished > result.admitted
        assert result.digests == run_solo(
            "t", workload="heat", workload_kwargs=HEAT_KW).digests

    def test_queued_job_latency_includes_the_wait(self):
        faults = FaultPlan([FaultRule(
            op="malloc", kind="pressure", oom_bytes=2 * 10**10, until_t=0.01,
        )])
        svc = Service(faults=faults)
        svc.add_tenant("t")
        jid = svc.submit("t", workload="heat", workload_kwargs=HEAT_KW, at=0.0)
        report = svc.run()
        svc.close()
        assert report.jobs[jid].latency >= 0.01


class TestDegrade:
    def test_degraded_replan_is_byte_identical(self):
        # 8 slots per field do not fit a 3 MB device, 1 slot does; the
        # degraded job must still produce its solo bits
        kw = {"shape": (64, 48, 48), "steps": 1, "seed": 0}
        svc = Service(device_memory_limit=3_000_000)
        svc.add_tenant("t")
        jid = svc.submit("t", workload="heat", workload_kwargs=kw,
                         n_regions=8, n_slots=8)
        report = svc.run()
        svc.close()
        result = report.jobs[jid]
        assert result.degraded
        assert result.n_slots < 8
        assert result.digests == run_solo(
            "t", workload="heat", workload_kwargs=kw, n_regions=8).digests

    def test_fitting_job_is_not_degraded(self):
        svc = Service()
        svc.add_tenant("t")
        jid = svc.submit("t", workload="heat", workload_kwargs=HEAT_KW)
        report = svc.run()
        svc.close()
        assert not report.jobs[jid].degraded


class TestShed:
    def test_priority_job_evicts_best_effort_slots(self):
        # under policy="queue" a deferring priority job may not shrink
        # itself; it takes slots from running best-effort jobs instead
        # 3 MB device: the best-effort pool (~1.6 MB) fits alone, but the
        # priority job (~1.6 MB) defers behind the reserved footprint —
        # under policy="queue" it takes a best-effort slot instead
        be_kw = {"shape": (64, 64, 64), "steps": 2,
                 "kernel_iteration": 512, "seed": 1}
        vip_kw = {"shape": (64, 48, 48), "steps": 1, "seed": 0}
        svc = Service(device_memory_limit=3_000_000, admission_policy="queue")
        svc.add_tenant("be")
        svc.add_tenant("vip", priority=True)
        be = svc.submit("be", workload="compute", workload_kwargs=be_kw,
                        n_regions=8, n_slots=6, at=0.0)
        vip = svc.submit("vip", workload="heat", workload_kwargs=vip_kw,
                         n_regions=8, n_slots=4, at=1e-4)
        report = svc.run()
        counters = svc.runtime.metrics.snapshot()["counters"]
        svc.close()
        assert counters.get("service.evictions.priority", 0) >= 1
        assert report.jobs[vip].finished > 0
        # the victim sheds capacity, never correctness
        for jid, name, kw in ((be, "compute", be_kw), (vip, "heat", vip_kw)):
            solo = run_solo(report.jobs[jid].tenant, workload=name,
                            workload_kwargs=kw, n_regions=8)
            assert report.jobs[jid].digests == solo.digests
        assert report.racy_hazards == 0


class TestReject:
    def test_oversized_job_rejected_at_submit_with_context(self):
        svc = Service(device_memory_limit=1_000_000)
        svc.add_tenant("t")
        with pytest.raises(ServiceError) as exc:
            svc.submit("t", workload="heat",
                       workload_kwargs={"shape": (8, 256, 256), "steps": 1},
                       name="too-big")
        svc.close()
        assert exc.value.reason == "reject"
        assert exc.value.tenant == "t"
        assert exc.value.job == "too-big"


class TestServiceErrors:
    def test_unknown_tenant(self):
        svc = Service()
        with pytest.raises(ServiceError) as exc:
            svc.submit("ghost", workload="heat", workload_kwargs=HEAT_KW)
        svc.close()
        assert exc.value.reason == "unknown-tenant"
        assert exc.value.tenant == "ghost"

    def test_unknown_workload(self):
        svc = Service()
        svc.add_tenant("t")
        with pytest.raises(ServiceError):
            svc.submit("t", workload="no-such-workload")
        svc.close()

    def test_duplicate_job_name(self):
        svc = Service()
        svc.add_tenant("t")
        svc.submit("t", workload="heat", workload_kwargs=HEAT_KW, name="dup")
        with pytest.raises(ServiceError) as exc:
            svc.submit("t", workload="heat", workload_kwargs=HEAT_KW,
                       name="dup")
        svc.close()
        assert exc.value.job == "dup"

    def test_unknown_scheduler_and_policy(self):
        with pytest.raises(ServiceError):
            Service(scheduler="fifo")
        with pytest.raises(ServiceError):
            Service(admission_policy="magic")


class TestControllerUnit:
    def _controller(self, **kwargs):
        svc = Service(**kwargs)
        return svc, svc.admission

    def test_reserved_tightens_the_budget(self):
        # slot pools allocate lazily: free memory alone would re-admit
        # bytes already promised to running jobs
        svc, ctl = self._controller(device_memory_limit=10_000_000)
        try:
            assert ctl.budget() == ctl.budget(reserved=0)
            assert ctl.budget(reserved=4_000_000) <= 6_000_000
            assert ctl.decide(7_000_000) == ADMIT
            assert ctl.decide(7_000_000, reserved=4_000_000) == DEFER
        finally:
            svc.close()

    def test_decision_ladder(self):
        svc, ctl = self._controller(device_memory_limit=10_000_000)
        try:
            assert ctl.decide(1) == ADMIT
            assert ctl.decide(10**9, 1) == DEGRADE
            assert ctl.decide(10**9, 9_000_000, reserved=5_000_000) == DEFER
            assert ctl.decide(10**9) == REJECT
        finally:
            svc.close()


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
