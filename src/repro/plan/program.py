"""The declarative ``Program`` front-end (the §V contract, completed).

A :class:`Program` is an ordered list of statements over *named fields*
— no regions, ghost widths, slots, or streams anywhere:

>>> from repro.plan import Program
>>> from repro.kernels import heat_kernel
>>> prog = Program((64, 64))
>>> with prog.sweep(10):
...     prog.step(heat_kernel(2), ("u_new", "u_old"), params={"coef": 0.1})
...     prog.swap("u_old", "u_new")

The planner (:func:`repro.plan.plan_program`) turns the declarations —
each kernel's ``arg_access`` + ``footprint`` — into a full decomposition
(ghost widths, region count, slot counts, eviction, prefetch), and
:meth:`repro.core.library.TidaAcc.run_program` executes it, eliding the
halo exchanges and write-backs the access sets prove redundant.

Statement kinds
---------------

* :class:`Step` — apply a kernel over co-iterated fields;
* :class:`Swap` — exchange two fields (time-level rotation);
* :class:`Reduce` — reduce field(s) to a scalar, stored in the run's
  scalar environment under ``store``;
* :class:`Scalar` — compute a host scalar from the environment
  (``fn(env) -> float``); in timing mode ``fn`` is skipped and the
  declared ``timing`` fallback is used, keeping timing runs arrayless;
* :class:`Loop` — repeat a statement block ``count`` times, with an
  optional ``until(env) -> bool`` early exit (functional mode only, by
  the same rule).

Kernel params may reference environment scalars with :func:`ref`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..cuda.kernel import KernelSpec
from ..errors import PlanError
from ..tida.boundary import BoundaryCondition


@dataclass(frozen=True)
class ScalarRef:
    """A kernel-param placeholder resolved from the run's scalar env."""

    name: str


def ref(name: str) -> ScalarRef:
    """Reference a scalar (a ``Reduce``/``Scalar`` result) in kernel params."""
    return ScalarRef(name)


@dataclass(frozen=True)
class Step:
    """Apply ``kernel`` over ``fields``, co-iterated tile by tile."""

    kernel: KernelSpec
    fields: tuple[str, ...]
    params: dict[str, Any] = field(default_factory=dict)
    bc: BoundaryCondition | None = None
    gpu: bool = True


@dataclass(frozen=True)
class Swap:
    """Exchange two fields (old/new time levels) without moving data."""

    a: str
    b: str


@dataclass(frozen=True)
class Reduce:
    """Reduce field(s) with a ReductionSpec; result lands in env[store]."""

    spec: Any
    fields: tuple[str, ...]
    store: str
    params: dict[str, Any] = field(default_factory=dict)
    gpu: bool = True


@dataclass(frozen=True)
class Scalar:
    """Host-side scalar update: ``env[name] = fn(env)``.

    ``fn`` needs numeric reduction results, so timing-only runs skip it
    and use the ``timing`` fallback value instead — mirroring how the
    hand-built drivers pin ``alpha = 1.0`` when there are no numerics.
    """

    name: str
    fn: Callable[[dict[str, float]], float]
    timing: float = 1.0


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` up to ``count`` times.

    ``until(env) -> bool`` is evaluated before each trip (functional
    mode only) and breaks the loop when true.
    """

    count: int
    body: tuple[Any, ...]
    until: Callable[[dict[str, float]], bool] | None = None


Statement = Any  # Step | Swap | Reduce | Scalar | Loop


class Program:
    """An ordered, declarative workload over named fields.

    ``domain`` is the global interior shape shared by every field;
    ``bc`` is the default boundary condition for steps that need a
    halo exchange (a per-step ``bc=`` overrides it).
    """

    def __init__(
        self,
        domain: tuple[int, ...],
        *,
        dtype: Any = np.float64,
        bc: BoundaryCondition | None = None,
    ) -> None:
        self.domain = tuple(int(s) for s in domain)
        if not self.domain or any(s <= 0 for s in self.domain):
            raise PlanError(f"domain must have positive extents, got {domain!r}")
        self.dtype = np.dtype(dtype)
        self.bc = bc
        self._stmts: list[Statement] = []
        self._stack: list[list[Statement]] = [self._stmts]

    # -- builders ----------------------------------------------------------

    def _append(self, stmt: Statement) -> "Program":
        self._stack[-1].append(stmt)
        return self

    @staticmethod
    def _field_tuple(fields: Any, what: str) -> tuple[str, ...]:
        if isinstance(fields, str):
            fields = (fields,)
        out = tuple(fields)
        if not out or not all(isinstance(f, str) and f for f in out):
            raise PlanError(f"{what} needs non-empty field names, got {fields!r}")
        return out

    def step(
        self,
        kernel: KernelSpec,
        fields: str | tuple[str, ...],
        *,
        params: dict[str, Any] | None = None,
        bc: BoundaryCondition | None = None,
        gpu: bool = True,
    ) -> "Program":
        """Apply ``kernel`` to ``fields`` (in the body's argument order)."""
        if not isinstance(kernel, KernelSpec):
            raise PlanError(f"step needs a KernelSpec, got {type(kernel).__name__}")
        names = self._field_tuple(fields, f"step({kernel.name!r})")
        for decl_name, decl in (("arg_access", kernel.arg_access),
                                ("footprint", kernel.footprint)):
            if decl is not None and len(decl) > len(names):
                raise PlanError(
                    f"step({kernel.name!r}) passes {len(names)} fields but the "
                    f"kernel declares {decl_name} for {len(decl)} arguments"
                )
        return self._append(Step(
            kernel=kernel, fields=names, params=dict(params or {}),
            bc=bc, gpu=gpu,
        ))

    def swap(self, a: str, b: str) -> "Program":
        """Exchange two fields (time-level rotation)."""
        if not (isinstance(a, str) and isinstance(b, str)) or a == b:
            raise PlanError(f"swap needs two distinct field names, got {a!r}, {b!r}")
        return self._append(Swap(a, b))

    def reduce(
        self,
        spec: Any,
        fields: str | tuple[str, ...],
        *,
        store: str,
        params: dict[str, Any] | None = None,
        gpu: bool = True,
    ) -> "Program":
        """Reduce field(s); the folded scalar lands in the env as ``store``."""
        names = self._field_tuple(fields, f"reduce({store!r})")
        if not isinstance(store, str) or not store:
            raise PlanError(f"reduce needs a non-empty store name, got {store!r}")
        return self._append(Reduce(
            spec=spec, fields=names, store=store, params=dict(params or {}),
            gpu=gpu,
        ))

    def scalar(
        self,
        name: str,
        fn: Callable[[dict[str, float]], float],
        *,
        timing: float = 1.0,
    ) -> "Program":
        """Host scalar update ``env[name] = fn(env)`` (timing fallback given)."""
        if not isinstance(name, str) or not name:
            raise PlanError(f"scalar needs a non-empty name, got {name!r}")
        if not callable(fn):
            raise PlanError("scalar needs a callable fn(env) -> float")
        return self._append(Scalar(name=name, fn=fn, timing=float(timing)))

    @contextmanager
    def sweep(
        self,
        count: int,
        *,
        until: Callable[[dict[str, float]], bool] | None = None,
    ) -> Iterator["Program"]:
        """Group the statements built inside the ``with`` into a Loop."""
        count = int(count)
        if count < 0:
            raise PlanError(f"sweep count must be >= 0, got {count}")
        body: list[Statement] = []
        self._stack.append(body)
        try:
            yield self
        finally:
            popped = self._stack.pop()
            assert popped is body
            self._append(Loop(count=count, body=tuple(body), until=until))

    # -- introspection -----------------------------------------------------

    @property
    def statements(self) -> tuple[Statement, ...]:
        if len(self._stack) != 1:
            raise PlanError("program read inside an open sweep() block")
        return tuple(self._stmts)

    def walk(self) -> Iterator[Statement]:
        """Every statement, loops flattened (each loop body yielded once)."""
        def _walk(stmts: tuple[Statement, ...]) -> Iterator[Statement]:
            for s in stmts:
                yield s
                if isinstance(s, Loop):
                    yield from _walk(s.body)
        return _walk(self.statements)

    def field_names(self) -> tuple[str, ...]:
        """All field names, in order of first appearance."""
        seen: dict[str, None] = {}
        for s in self.walk():
            if isinstance(s, Step) or isinstance(s, Reduce):
                for f in s.fields:
                    seen.setdefault(f)
            elif isinstance(s, Swap):
                seen.setdefault(s.a)
                seen.setdefault(s.b)
        return tuple(seen)

    def validate(self) -> None:
        """Cross-statement consistency (swaps of undeclared fields, etc.)."""
        declared = set()
        for s in self.walk():
            if isinstance(s, (Step, Reduce)):
                declared.update(s.fields)
        for s in self.walk():
            if isinstance(s, Swap):
                missing = {s.a, s.b} - declared
                if missing:
                    raise PlanError(
                        f"swap({s.a!r}, {s.b!r}) references field(s) "
                        f"{sorted(missing)} no step or reduce ever touches"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(domain={self.domain}, fields={list(self.field_names())}, "
            f"statements={len(self._stmts)})"
        )
