"""Multi-GPU runtime and distributed heat solver tests."""

import numpy as np
import pytest

from repro.baselines.common import default_init, reference_heat
from repro.errors import CudaInvalidValueError, TidaError
from repro.multi import MultiGpuRuntime, run_multi_gpu_heat
from repro.multi.heat import MultiGpuHeat
from repro.tida.boundary import Dirichlet, Neumann, Periodic

SHAPE = (16, 8, 8)
STEPS = 4


class TestMultiGpuRuntime:
    def test_devices_share_clock_and_trace(self, machine):
        mgr = MultiGpuRuntime(machine, 3)
        assert all(d.clock is mgr.clock for d in mgr.devices)
        assert all(d.trace is mgr.trace for d in mgr.devices)

    def test_lane_prefixes(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        assert mgr.device(0).compute_engine.name == "gpu0:compute"
        assert mgr.device(1).h2d_engine.name == "gpu1:h2d"

    def test_invalid_counts(self, machine):
        with pytest.raises(CudaInvalidValueError):
            MultiGpuRuntime(machine, 0)
        mgr = MultiGpuRuntime(machine, 2)
        with pytest.raises(CudaInvalidValueError):
            mgr.device(2)

    def test_peer_copy_moves_data(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        src = mgr.device(0).malloc((8,))
        dst = mgr.device(1).malloc((8,))
        src.array[...] = 7.0
        end = mgr.peer_copy(1, dst, 0, src)
        assert np.all(dst.array == 7.0)
        assert end > 0

    def test_peer_copy_occupies_both_engines(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        src = mgr.device(0).malloc((1024,))
        dst = mgr.device(1).malloc((1024,))
        mgr.peer_copy(1, dst, 0, src)
        lanes = {e.lane for e in mgr.trace}
        assert "gpu0:d2h" in lanes and "gpu1:h2d" in lanes

    def test_peer_copy_same_device_rejected(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        a = mgr.device(0).malloc((8,))
        b = mgr.device(0).malloc((8,))
        with pytest.raises(CudaInvalidValueError):
            mgr.peer_copy(0, a, 0, b)

    def test_peer_copy_wrong_device_buffer_rejected(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        a = mgr.device(0).malloc((8,))
        b = mgr.device(1).malloc((8,))
        with pytest.raises(CudaInvalidValueError):
            mgr.peer_copy(1, a, 0, b)  # a lives on device 0, stated as 1

    def test_peer_copy_size_mismatch(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        a = mgr.device(0).malloc((8,))
        b = mgr.device(1).malloc((9,))
        with pytest.raises(CudaInvalidValueError):
            mgr.peer_copy(1, b, 0, a)

    def test_synchronize_all(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        src = mgr.device(0).malloc((100_000,))
        host = mgr.device(0).malloc_pinned((100_000,))
        end = mgr.device(0).memcpy_async(src, host, mgr.device(0).create_stream())
        mgr.synchronize_all()
        assert mgr.now >= end

    def test_independent_pools(self, machine):
        mgr = MultiGpuRuntime(machine, 2)
        mgr.device(0).malloc((1024,))
        free0 = mgr.device(0).mem_get_info()[0]
        free1 = mgr.device(1).mem_get_info()[0]
        assert free1 - free0 == 8192


class TestMultiGpuHeatCorrectness:
    @pytest.fixture(scope="class")
    def setup(self):
        init = default_init(SHAPE, 1)
        return init

    @pytest.mark.parametrize("bc", [Neumann(), Dirichlet(0.3), Periodic()])
    @pytest.mark.parametrize("n_devices", [1, 2, 4])
    def test_matches_reference(self, machine, setup, bc, n_devices):
        init = setup
        ref = reference_heat(init, STEPS, coef=0.1, bc=bc, ghost=1)
        r = run_multi_gpu_heat(
            machine, shape=SHAPE, steps=STEPS, n_devices=n_devices,
            regions_per_device=2, functional=True,
            initial=init[1:-1, 1:-1, 1:-1].copy(), bc=bc,
        )
        np.testing.assert_allclose(r.result, ref)

    def test_matches_single_gpu_library(self, machine, setup):
        """Multi-GPU and single-device TiDA-acc agree bit-for-bit."""
        from repro.baselines import run_tida_heat
        init = setup
        single = run_tida_heat(machine, shape=SHAPE, steps=STEPS, n_regions=4,
                               functional=True,
                               initial=init[1:-1, 1:-1, 1:-1].copy())
        multi = run_multi_gpu_heat(machine, shape=SHAPE, steps=STEPS, n_devices=2,
                                   regions_per_device=2, functional=True,
                                   initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_array_equal(single.result, multi.result)

    def test_uneven_split_rejected(self, machine):
        with pytest.raises(TidaError):
            MultiGpuHeat(machine, shape=(15, 8, 8), n_devices=2)

    @pytest.mark.parametrize("shape", [(16,), (16, 8)])
    def test_lower_dimensions(self, machine, shape):
        """Multi-GPU halos work in 1-D and 2-D too."""
        init = default_init(shape, 1)
        ref = reference_heat(init, 3, coef=0.1, bc=Neumann(), ghost=1)
        interior = init[tuple(slice(1, -1) for _ in shape)].copy()
        r = run_multi_gpu_heat(machine, shape=shape, steps=3, n_devices=2,
                               regions_per_device=2, functional=True,
                               initial=interior)
        np.testing.assert_allclose(r.result, ref)


class TestMultiGpuScaling:
    def test_strong_scaling_monotone(self, machine):
        times = {
            nd: run_multi_gpu_heat(machine, shape=(256, 256, 256), steps=20,
                                   n_devices=nd, regions_per_device=4).elapsed
            for nd in (1, 2, 4)
        }
        assert times[2] < times[1]
        assert times[4] < times[2]

    def test_halo_traffic_present(self, machine):
        r = run_multi_gpu_heat(machine, shape=(64, 64, 64), steps=2, n_devices=2,
                               regions_per_device=2)
        p2p = [e for e in r.trace if e.name.startswith("p2p:")]
        packs = [e for e in r.trace if "halo-pack" in e.name]
        # 2 halos per step x 2 steps, each traced on both engines
        assert len(p2p) == 8
        assert len(packs) == 4

    def test_devices_overlap_in_time(self, machine):
        """Compute on different devices must actually run concurrently."""
        r = run_multi_gpu_heat(machine, shape=(256, 256, 256), steps=5,
                               n_devices=2, regions_per_device=4)
        t = r.trace
        overlap = t.overlap_time(["gpu0:compute"], ["gpu1:compute"])
        assert overlap > 0.25 * t.busy_time("gpu0:compute")
