"""Region and Tile coordinate mapping."""

import numpy as np
import pytest

from repro.errors import TidaError
from repro.sim.hostmem import HostBuffer
from repro.tida.box import Box
from repro.tida.region import Region
from repro.tida.tile import Tile


def make_region(lo=(4,), hi=(8,), ghost=1):
    box = Box(lo, hi)
    shape = box.grow(ghost).shape
    return Region(0, box, ghost, data=HostBuffer(shape, label="r0"))


class TestRegion:
    def test_local_shape_includes_ghosts(self):
        r = make_region((4, 4), (8, 10), ghost=2)
        assert r.local_shape == (8, 10)

    def test_shape_mismatch_rejected(self):
        box = Box((0,), (4,))
        with pytest.raises(TidaError):
            Region(0, box, 1, data=HostBuffer((4,)))  # needs 6

    def test_empty_interior_rejected(self):
        with pytest.raises(TidaError):
            Region(0, Box((0,), (0,)), 0)

    def test_negative_ghost_rejected(self):
        with pytest.raises(TidaError):
            Region(0, Box((0,), (4,)), -1)

    def test_local_slices_interior(self):
        r = make_region((4,), (8,), ghost=1)
        assert r.interior_slices == (slice(1, 5),)

    def test_local_slices_ghost_area(self):
        r = make_region((4,), (8,), ghost=1)
        assert r.local_slices(Box((3,), (4,))) == (slice(0, 1),)

    def test_local_slices_outside_rejected(self):
        r = make_region((4,), (8,), ghost=1)
        with pytest.raises(TidaError):
            r.local_slices(Box((0,), (2,)))

    def test_local_bounds(self):
        r = make_region((4,), (8,), ghost=1)
        lo, hi = r.local_bounds(r.box)
        assert (lo, hi) == ((1,), (5,))

    def test_views_share_memory(self):
        r = make_region()
        r.interior[...] = 7.0
        assert r.array[1:-1].sum() == 4 * 7.0

    def test_view_without_allocation(self):
        r = Region(0, Box((0,), (4,)), 0)
        with pytest.raises(TidaError):
            _ = r.interior
        with pytest.raises(TidaError):
            _ = r.nbytes


class TestTile:
    def test_whole_region_tile(self):
        r = make_region((4,), (8,), ghost=1)
        t = Tile(r, r.box)
        assert t.n_cells == 4
        assert t.local_bounds == ((1,), (5,))

    def test_sub_tile(self):
        r = make_region((4,), (8,), ghost=1)
        t = Tile(r, Box((5,), (7,)))
        assert t.local_bounds == ((2,), (4,))

    def test_tile_escaping_region_rejected(self):
        r = make_region((4,), (8,), ghost=1)
        with pytest.raises(TidaError):
            Tile(r, Box((3,), (7,)))  # 3 is ghost, not interior

    def test_empty_tile_rejected(self):
        r = make_region((4,), (8,), ghost=1)
        with pytest.raises(TidaError):
            Tile(r, Box((5,), (5,)))

    def test_subrange(self):
        r = make_region((4,), (8,), ghost=1)
        t = Tile(r, r.box)
        sub = t.subrange((5,), (7,))
        assert sub.box == Box((5,), (7,))
        assert sub.region is r

    def test_subrange_clamps_to_tile(self):
        r = make_region((4,), (8,), ghost=1)
        t = Tile(r, r.box)
        sub = t.subrange((0,), (100,))
        assert sub.box == t.box

    def test_subrange_disjoint_rejected(self):
        r = make_region((4,), (8,), ghost=1)
        t = Tile(r, r.box)
        with pytest.raises(TidaError):
            t.subrange((20,), (30,))
