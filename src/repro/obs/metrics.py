"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The runtime's *trace* answers "when did each operation run"; the metrics
registry answers "how often did each scheduling decision happen and how
much did it move".  Every :class:`~repro.cuda.runtime.CudaRuntime` owns
one registry (``runtime.metrics``), shared by the OpenACC layer and the
TileAcc managers bound to it, so one number space covers a whole run:

* **counters** — monotonically increasing totals (bytes uploaded, cache
  hits, evictions, stall seconds);
* **gauges** — last-written values with a high-water mark (queue depth,
  cache occupancy);
* **histograms** — fixed-bucket distributions (transfer sizes, kernel
  cell counts), chosen over quantile sketches so snapshots are exact,
  mergeable, and diff-friendly.

Everything is plain Python floats/ints in dicts — no external
dependencies — and a registry built with ``enabled=False`` routes every
instrument to a shared no-op so disabled instrumentation costs one
attribute load per call site.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..errors import ReproError


class ObsError(ReproError):
    """Invalid use of the observability layer."""


#: Default histogram bucket upper bounds: powers of 4 covering one byte
#: to ~1 GiB, a good fit for both transfer sizes and cell counts.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4.0 ** k for k in range(16))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A last-written value plus its high-water mark."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed upper-bound buckets (plus a +Inf overflow bucket).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflow.  ``sum``/``count``/``min``/``max`` ride along so the
    mean and range survive snapshotting.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bl = [float(b) for b in buckets]
        if not bl or bl != sorted(bl) or len(set(bl)) != len(bl):
            raise ObsError(f"histogram {name!r} needs strictly increasing buckets")
        self.name = name
        self.buckets = tuple(bl)
        self.counts = [0] * (len(bl) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observations (None for an empty series)."""
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation inside the covering bucket.

        The empty series returns ``None`` (never NaN), a single-sample
        series returns that sample exactly for every ``q``, and results
        are always clamped to the observed ``[min, max]`` range.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"percentile q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        if self.count == 1 or self.min == self.max:
            return self.min
        target = q * self.count
        cum = 0.0
        lower = self.min
        for i, ub in enumerate(self.buckets):
            c = self.counts[i]
            if c:
                upper = min(ub, self.max)
                lo = max(lower, self.min)
                if upper < lo:
                    upper = lo
                if cum + c >= target:
                    frac = (target - cum) / c
                    return min(max(lo + (upper - lo) * frac, self.min), self.max)
                cum += c
                lower = upper
            elif ub > lower:
                lower = ub
        return self.max  # remaining mass sits in the +Inf overflow bucket

    def summary(self) -> dict[str, Any]:
        """Count/sum/mean/min/max plus p50/p90/p99, safe on any series."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_snapshot(cls, name: str, snap: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output.

        Lets consumers of serialized snapshots (manifest compare gates,
        report tables) recover :meth:`percentile` without re-observing
        the series.
        """
        h = cls(name, snap["buckets"])
        counts = [int(c) for c in snap["counts"]]
        if len(counts) != len(h.counts):
            raise ObsError(
                f"histogram {name!r} snapshot has {len(counts)} counts for "
                f"{len(h.buckets)} buckets"
            )
        h.counts = counts
        h.sum = float(snap["sum"])
        h.count = int(snap["count"])
        h.min = float("inf") if snap.get("min") is None else float(snap["min"])
        h.max = float("-inf") if snap.get("max") is None else float(snap["max"])
        return h


class _Null:
    """Shared do-nothing instrument handed out by disabled registries."""

    __slots__ = ()
    name = "<disabled>"
    value = 0.0
    max = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _Null()

#: When not None, every newly created registry is appended here so a
#: harness-level caller can merge the counters of all runtimes created
#: during a run (see :func:`start_collection` / :func:`collect`).
_collection: list["MetricsRegistry"] | None = None


def start_collection() -> None:
    """Begin retaining every registry created from now on (bench harness)."""
    global _collection
    _collection = []


def collect() -> dict[str, Any]:
    """Merge and return a snapshot of all registries created since
    :func:`start_collection`; stops collecting."""
    global _collection
    regs, _collection = _collection or [], None
    return merge_snapshots([r.snapshot() for r in regs])


def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Sum counters, max gauges, and bucket-wise-add histograms.

    The merged dicts are returned in sorted name order regardless of the
    order registries were created in, so serialized snapshots (JSONL
    session logs, ledger files) diff stably across runs.
    """
    out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snaps:
        for name, v in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0.0) + v
        for name, g in snap.get("gauges", {}).items():
            prev = out["gauges"].get(name)
            if prev is None:
                out["gauges"][name] = dict(g)
            else:
                prev["value"] = max(prev["value"], g["value"])
                prev["max"] = max(prev["max"], g["max"])
        for name, h in snap.get("histograms", {}).items():
            prev = out["histograms"].get(name)
            if prev is None:
                out["histograms"][name] = {k: (list(v) if isinstance(v, list) else v)
                                           for k, v in h.items()}
            elif prev["buckets"] == h["buckets"]:
                prev["counts"] = [a + b for a, b in zip(prev["counts"], h["counts"])]
                prev["sum"] += h["sum"]
                prev["count"] += h["count"]
                for k, fold in (("min", min), ("max", max)):
                    vals = [v for v in (prev[k], h[k]) if v is not None]
                    prev[k] = fold(vals) if vals else None
                if "mean" in prev:
                    prev["mean"] = prev["sum"] / prev["count"] if prev["count"] else None
            else:  # incompatible buckets: keep the first, count the clash
                out["counters"]["obs.merge_bucket_mismatch"] = (
                    out["counters"].get("obs.merge_bucket_mismatch", 0.0) + 1
                )
    return {
        "counters": dict(sorted(out["counters"].items())),
        "gauges": dict(sorted(out["gauges"].items())),
        "histograms": dict(sorted(out["histograms"].items())),
    }


class MetricsRegistry:
    """A named space of counters, gauges, and histograms.

    Instruments are created on first use and cached, so hot call sites
    can hold the instrument object directly::

        m = runtime.metrics.counter("cuda.h2d_bytes")
        ...
        m.inc(nbytes)          # no dict lookup on the hot path
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        if _collection is not None:
            _collection.append(self)

    # -- instrument factories ---------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    # -- convenience one-shots --------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        c = self._counters.get(name)
        return c.value if c is not None else default

    def find_histogram(self, name: str) -> Histogram | None:
        """The histogram registered as ``name``, or ``None`` — never
        creates one (unlike :meth:`histogram`), so read-only consumers
        don't pollute snapshots with empty series."""
        return self._histograms.get(name)

    def sum_counters(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``.

        The telemetry bus uses this to fold per-field instrument families
        (``cache.hits.<field>``, ...) into one sampled series.
        """
        return sum(c.value for n, c in self._counters.items() if n.startswith(prefix))

    def max_gauge(self, prefix: str, suffix: str = "") -> float:
        """Largest *current* value among gauges whose name starts with
        ``prefix`` (and, when given, ends with ``suffix``); 0.0 when none
        exist."""
        vals = [
            g.value for n, g in self._gauges.items()
            if n.startswith(prefix) and n.endswith(suffix)
        ]
        return max(vals) if vals else 0.0

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every instrument, safe to ``json.dumps``."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2))
        return path

    def reset(self) -> None:
        """Drop every instrument (tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
