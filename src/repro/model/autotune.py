"""Autotuning sweeps: region counts, prefetch depths, machine candidates.

Region counts (the knob Fig. 5's caption fixes at 16) offer two
strategies:

* ``strategy="model"`` — evaluate the closed-form estimate for each
  candidate count (microseconds per candidate);
* ``strategy="measure"`` — run the timing-only simulator for each
  candidate (milliseconds per candidate, exact within the simulation).

Both return the full sweep so ablation A1 can print the U-shaped curve:
too few regions ⇒ coarse pipelining (poor overlap), too many ⇒ launch
overhead and ghost-face volume dominate.

Machine candidates (:func:`sweep_machines` — which link/GPU should this
workload buy?) add a third strategy: ``"replay"`` simulates the workload
*once*, records its causal DAG, and reschedules that DAG under each
candidate machine (:func:`~repro.obs.critpath.replay_machine`) —
microseconds per candidate instead of a full simulation — then re-runs
the winner in the simulator to verify the pick with a real measurement.
Replay is only sound on the machine axis: region/prefetch knobs change
the *program*, so their sweeps always re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.kernel import KernelSpec
from ..errors import ReproError
from .analytic import estimate_resident, estimate_streaming


@dataclass(frozen=True)
class SweepPoint:
    n_regions: int
    seconds: float


def sweep_region_counts(
    machine: MachineSpec | None = None,
    *,
    kernel: KernelSpec,
    domain_cells: int,
    steps: int,
    candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    strategy: str = "model",
    resident: bool = True,
    fields: int = 1,
    result_fields: int = 1,
    ghost_width: int = 0,
    measure_fn: Callable[[int], float] | None = None,
) -> list[SweepPoint]:
    """Evaluate every candidate region count; returns the full sweep.

    With ``strategy="measure"``, ``measure_fn(n_regions) -> seconds`` must
    be supplied (typically a lambda around a timing-only
    :func:`~repro.baselines.tida_runners.run_tida_heat` /
    ``run_tida_compute`` call).
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    if strategy not in ("model", "measure"):
        raise ReproError(f"strategy must be 'model' or 'measure', got {strategy!r}")
    if strategy == "measure" and measure_fn is None:
        raise ReproError("strategy='measure' requires measure_fn")
    if not candidates:
        raise ReproError("candidates must be non-empty")
    points: list[SweepPoint] = []
    for n in candidates:
        if n < 1:
            raise ReproError(f"candidate region counts must be >= 1, got {n}")
        if strategy == "measure":
            seconds = measure_fn(n)
        elif resident:
            seconds = estimate_resident(
                machine, kernel,
                domain_cells=domain_cells, steps=steps, n_regions=n,
                fields=fields, result_fields=result_fields, ghost_width=ghost_width,
            ).total
        else:
            seconds = estimate_streaming(
                machine, kernel,
                domain_cells=domain_cells, steps=steps, n_regions=n, fields=fields,
            ).total
        points.append(SweepPoint(n_regions=n, seconds=seconds))
    return points


def autotune_region_count(
    machine: MachineSpec | None = None,
    **kwargs,
) -> int:
    """The candidate with the smallest predicted/measured time."""
    sweep = sweep_region_counts(machine, **kwargs)
    return min(sweep, key=lambda p: p.seconds).n_regions


@dataclass(frozen=True)
class PrefetchSweepPoint:
    prefetch_depth: int
    seconds: float


def sweep_prefetch_depth(
    *,
    candidates: Sequence[int] = (0, 1, 2, 4),
    measure_fn: Callable[[int], float],
) -> list[PrefetchSweepPoint]:
    """Evaluate lookahead prefetch depths (measure-only: the closed-form
    model has no notion of speculative uploads).

    ``measure_fn(depth) -> seconds`` is typically a lambda around a
    timing-only :func:`~repro.baselines.tida_runners.run_tida_compute`
    call with ``prefetch_depth=depth``.  Depth 0 is the demand-paged
    baseline; include it so the sweep shows whether prefetching pays at
    all for the configuration.
    """
    if not candidates:
        raise ReproError("candidates must be non-empty")
    points: list[PrefetchSweepPoint] = []
    for depth in candidates:
        if depth < 0:
            raise ReproError(f"prefetch depths must be >= 0, got {depth}")
        points.append(PrefetchSweepPoint(prefetch_depth=depth,
                                         seconds=measure_fn(depth)))
    return points


def autotune_prefetch_depth(**kwargs) -> int:
    """The prefetch depth with the smallest measured time (ties favor the
    shallowest depth, i.e. the least speculation)."""
    sweep = sweep_prefetch_depth(**kwargs)
    return min(sweep, key=lambda p: (p.seconds, p.prefetch_depth)).prefetch_depth


@dataclass(frozen=True)
class MachineSweepPoint:
    """One candidate machine's predicted (or measured) workload time."""

    name: str
    seconds: float
    surrogate: str          # "replay" (DAG prediction) | "measure" (simulated)


def _dag_span(result: Any) -> float:
    """Device-op makespan of a run — the quantity a replay predicts.

    ``elapsed`` starts after initialization while the DAG includes the
    initial uploads, so sweeps must rank both surrogate kinds on the
    same clock: the span of the recorded device ops.
    """
    dag = getattr(result, "dag", None)
    if dag:
        return max(n.end for n in dag) - min(n.start for n in dag)
    return float(result.elapsed)


def sweep_machines(
    candidates: Sequence[MachineSpec],
    *,
    measure_result_fn: Callable[[MachineSpec], Any],
    strategy: str = "replay",
    base: MachineSpec | None = None,
) -> list[MachineSweepPoint]:
    """Evaluate the workload on every candidate machine; full sweep back.

    ``measure_result_fn(machine)`` runs the workload and returns a
    :class:`~repro.baselines.common.BaselineResult`-shaped object; for
    ``strategy="replay"`` it must have been run with the hazard checker
    armed (``check="observe"``) so ``.dag`` is populated.

    ``strategy="replay"`` measures once on ``base`` (default: the first
    candidate), replays the recorded DAG under every candidate, then
    re-measures the *winner* in the full simulator — so the returned
    winning number is always a real measurement, and a surrogate
    mis-ranking is bounded by the replay error, not compounded by it.
    ``strategy="measure"`` simulates every candidate.
    """
    from ..obs.critpath import replay_machine

    if strategy not in ("measure", "replay"):
        raise ReproError(
            f"strategy must be 'measure' or 'replay', got {strategy!r}"
        )
    if not candidates:
        raise ReproError("candidates must be non-empty")
    if strategy == "measure":
        return [
            MachineSweepPoint(
                name=m.name, seconds=_dag_span(measure_result_fn(m)),
                surrogate="measure",
            )
            for m in candidates
        ]
    base = base if base is not None else candidates[0]
    recording = measure_result_fn(base)
    if not getattr(recording, "dag", None):
        raise ReproError(
            "strategy='replay' needs the base run's DAG; pass check='observe' "
            "through measure_result_fn"
        )
    points: list[MachineSweepPoint] = []
    for m in candidates:
        _, makespan = replay_machine(recording.dag, machine=base, perturbed=m)
        points.append(
            MachineSweepPoint(name=m.name, seconds=makespan, surrogate="replay")
        )
    win = min(range(len(points)), key=lambda i: points[i].seconds)
    verified = _dag_span(measure_result_fn(candidates[win]))
    points[win] = MachineSweepPoint(
        name=points[win].name, seconds=verified, surrogate="measure"
    )
    return points


def autotune_machine(
    candidates: Sequence[MachineSpec], **kwargs
) -> MachineSpec:
    """The candidate machine with the smallest predicted/measured time."""
    sweep = sweep_machines(candidates, **kwargs)
    win = min(range(len(sweep)), key=lambda i: sweep[i].seconds)
    return candidates[win]
