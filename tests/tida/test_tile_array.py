"""TileArray: allocation, gather/scatter, tiles, ghost exchange vs reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.common import apply_bc_global
from repro.cuda.runtime import CudaRuntime
from repro.errors import TidaError
from repro.tida.boundary import Dirichlet, Neumann, Periodic
from repro.tida.box import Box
from repro.tida.tile_array import TileArray


def reference_ghosted(ta: TileArray, global_arr: np.ndarray, bc) -> np.ndarray:
    """Global ghosted array with BC + wrap applied, to compare region views."""
    g = ta.ghost[0]
    full = np.zeros(tuple(s + 2 * g for s in global_arr.shape), dtype=global_arr.dtype)
    full[tuple(slice(g, s + g) for s in global_arr.shape)] = global_arr
    apply_bc_global(full, g, bc)
    return full


class TestConstruction:
    def test_by_region_shape(self):
        ta = TileArray((8, 8), region_shape=(4, 4), ghost=1)
        assert ta.n_regions == 4
        assert ta.regions[0].local_shape == (6, 6)

    def test_by_count(self):
        ta = TileArray((16,), n_regions=4, ghost=0)
        assert ta.n_regions == 4

    def test_both_specs_rejected(self):
        with pytest.raises(TidaError):
            TileArray((8,), region_shape=(4,), n_regions=2)

    def test_neither_spec_rejected(self):
        with pytest.raises(TidaError):
            TileArray((8,))

    def test_fill(self):
        ta = TileArray((8,), n_regions=2, fill=3.0)
        assert np.all(ta.to_global() == 3.0)

    def test_pinned_through_runtime(self, machine):
        rt = CudaRuntime(machine)
        ta = TileArray((8,), n_regions=2, runtime=rt, pinned=True)
        assert all(r.data.pinned for r in ta.regions)

    def test_pageable_through_runtime(self, machine):
        rt = CudaRuntime(machine)
        ta = TileArray((8,), n_regions=2, runtime=rt, pinned=False)
        assert not ta.regions[0].data.pinned

    def test_region_lookup_bounds(self):
        ta = TileArray((8,), n_regions=2)
        with pytest.raises(TidaError):
            ta.region(2)

    def test_timing_only_through_runtime(self, machine):
        rt = CudaRuntime(machine, functional=False)
        ta = TileArray((512, 512), n_regions=4, runtime=rt)
        assert not ta.functional


class TestGatherScatter:
    @given(
        st.tuples(st.integers(2, 12), st.integers(2, 12)),
        st.integers(1, 4),
        st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, shape, n_regions, ghost):
        if n_regions > shape[0]:
            return
        ta = TileArray(shape, n_regions=n_regions, ghost=ghost)
        rng = np.random.default_rng(0)
        data = rng.random(shape)
        ta.from_global(data)
        assert np.array_equal(ta.to_global(), data)

    def test_shape_mismatch(self):
        ta = TileArray((8,), n_regions=2)
        with pytest.raises(TidaError):
            ta.from_global(np.zeros(9))

    def test_set_all(self):
        ta = TileArray((8,), n_regions=2, ghost=1)
        ta.set_all(2.0)
        assert np.all(ta.to_global() == 2.0)

    def test_apply(self):
        ta = TileArray((8,), n_regions=2, fill=1.0)
        ta.apply(lambda view, region: view.__imul__(region.rid + 1))
        out = ta.to_global()
        assert np.all(out[:4] == 1.0) and np.all(out[4:] == 2.0)


class TestTiles:
    def test_one_tile_per_region_default(self):
        ta = TileArray((8, 8), region_shape=(4, 4))
        tiles = ta.tiles()
        assert len(tiles) == 4
        assert all(t.box == t.region.box for t in tiles)

    def test_explicit_tile_shape_partitions(self):
        ta = TileArray((8,), n_regions=2)
        tiles = ta.tiles(tile_shape=(2,))
        assert len(tiles) == 4
        assert sum(t.n_cells for t in tiles) == 8

    def test_tiles_carry_array_ref(self):
        ta = TileArray((8,), n_regions=2)
        assert all(t.array is ta for t in ta.tiles())


class TestSwap:
    def test_swap_data(self):
        a = TileArray((8,), n_regions=2, fill=1.0)
        b = TileArray((8,), n_regions=2, fill=2.0)
        a.swap_data(b)
        assert np.all(a.to_global() == 2.0)
        assert np.all(b.to_global() == 1.0)

    def test_swap_incompatible(self):
        a = TileArray((8,), n_regions=2)
        b = TileArray((8,), n_regions=4)
        with pytest.raises(TidaError):
            a.swap_data(b)


class TestGhostExchange:
    @pytest.mark.parametrize("bc", [Neumann(), Dirichlet(0.25), Periodic()])
    @pytest.mark.parametrize("shape,spec", [
        ((12,), {"n_regions": 3}),
        ((8, 8), {"region_shape": (4, 4)}),
        ((6, 6, 6), {"region_shape": (3, 3, 6)}),
    ])
    def test_matches_global_reference(self, bc, shape, spec):
        """Every region's full local array (ghosts included) must equal the
        corresponding window of the globally-ghosted reference array."""
        ta = TileArray(shape, ghost=1, **spec)
        rng = np.random.default_rng(42)
        data = rng.random(shape)
        ta.from_global(data)
        ta.fill_boundary(bc)
        full = reference_ghosted(ta, data, bc)
        for region in ta.regions:
            window = full[tuple(
                slice(l + 1, h + 1) for l, h in zip(region.grown.lo, region.grown.hi)
            )]
            np.testing.assert_array_equal(region.array, window)

    def test_zero_ghost_noop(self):
        ta = TileArray((8,), n_regions=2, ghost=0)
        ta.fill_boundary(Neumann())  # must not raise

    def test_exchange_only_no_bc(self):
        """bc=None: internal faces exchanged, domain ghosts untouched."""
        ta = TileArray((8,), n_regions=2, ghost=1, fill=0.0)
        ta.from_global(np.arange(8, dtype=float))
        ta.fill_boundary(None)
        r0, r1 = ta.regions
        assert r0.array[-1] == 4.0   # neighbour's first interior cell
        assert r1.array[0] == 3.0
        assert r0.array[0] == 0.0    # domain ghost untouched

    def test_single_region_periodic_self_wrap(self):
        ta = TileArray((6,), n_regions=1, ghost=1)
        ta.from_global(np.arange(6, dtype=float))
        ta.fill_boundary(Periodic())
        r = ta.regions[0]
        assert r.array[0] == 5.0
        assert r.array[-1] == 0.0

    def test_2d_periodic_corner_wrap(self):
        """Corners must wrap diagonally (blur-style stencils need them)."""
        shape = (4, 4)
        ta = TileArray(shape, region_shape=(2, 2), ghost=1)
        data = np.arange(16, dtype=float).reshape(shape)
        ta.from_global(data)
        ta.fill_boundary(Periodic())
        r00 = ta.regions[0]  # region at (0,0)
        assert r00.array[0, 0] == data[-1, -1]

    def test_ghost_width_two(self):
        shape = (12,)
        ta = TileArray(shape, n_regions=3, ghost=2)
        data = np.arange(12, dtype=float)
        ta.from_global(data)
        ta.fill_boundary(Periodic())
        full = reference_ghosted(ta, data, Periodic())
        for region in ta.regions:
            window = full[tuple(
                slice(l + 2, h + 2) for l, h in zip(region.grown.lo, region.grown.hi)
            )]
            np.testing.assert_array_equal(region.array, window)

    def test_fill_boundary_charges_host_time(self, machine):
        rt = CudaRuntime(machine)
        ta = TileArray((16,), n_regions=4, ghost=1, runtime=rt)
        t0 = rt.now
        ta.fill_boundary(Neumann())
        assert rt.now > t0
        assert any(e.category == "host" for e in rt.trace)
