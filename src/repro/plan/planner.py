"""The access-set planner: declarations in, full decomposition out.

Everything the hand-built drivers configure by hand is derived here from
the kernels' ``arg_access`` + ``footprint`` declarations and the
analytic model:

* **ghost widths** — per-axis read radii unioned over every kernel
  applied to a field, then unified across fields that co-iterate (the
  compute path requires co-iterated fields to share a ghost width) or
  swap with each other;
* **region count** — :func:`~repro.model.autotune.autotune_region_count`
  over the program's dominant kernel;
* **slot counts / eviction / prefetch** — resident fields keep every
  region on the device under LRU; when the working set exceeds device
  memory, slots are fair-shared across fields and Belady-style lookahead
  takes over;
* **redundancy proofs** — a field whose swap-alias group is never
  written is read-only on the device (``access="ro"``: evictions and
  flushes skip the write-back), and a read-only field's halo exchange is
  loop-invariant (fill once, elide every repeat).

The proofs are *sound by construction*: skipping a write-back of
unmodified data and skipping a re-fill of a clean halo both copy bytes
that are already in place, so planner-derived runs stay byte-identical
to hand-built ones — the conformance property ``repro.bench.plan_bench``
gates on.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.kernel import KernelSpec
from ..errors import PlanError
from ..model.analytic import estimate_resident, estimate_streaming
from ..model.autotune import autotune_region_count
from .program import Loop, Program, Reduce, Step, Swap

#: Candidate region counts the auto-sizer sweeps (clamped to the slab
#: axis extent).  Matches the Fig. 5 sweep range.
DEFAULT_REGION_CANDIDATES = (1, 2, 4, 8, 16, 32)


def derive_halo(kernels: Any, ndim: int) -> tuple[int, ...]:
    """Per-axis ghost width a field needs under the given kernels.

    The union (elementwise max) of every kernel's read radius — the rule
    behind ``add_array(halo="auto", kernels=...)``.
    """
    kernels = tuple(kernels)
    if not kernels:
        raise PlanError("derive_halo needs at least one KernelSpec")
    radius = [0] * ndim
    for k in kernels:
        if not isinstance(k, KernelSpec):
            raise PlanError(f"derive_halo needs KernelSpecs, got {type(k).__name__}")
        for axis, r in enumerate(k.read_radius(ndim)):
            radius[axis] = max(radius[axis], r)
    return tuple(radius)


@dataclass(frozen=True)
class FieldPlan:
    """One field's derived configuration."""

    name: str
    halo: tuple[int, ...]         # per-axis ghost width
    access: str                   # "ro" (proven never written) | "rw"
    written: bool                 # any step writes it (pre-aliasing)
    stencil_read: bool            # any step reads it beyond its own cell
    group: tuple[str, ...]        # ghost-width unification group


@dataclass(frozen=True)
class PlanReport:
    """A fully derived decomposition, ready for ``run_program``.

    ``decisions`` is the human-readable audit trail: one line per choice
    the planner made and why.
    """

    domain: tuple[int, ...]
    dtype: str
    fields: dict[str, FieldPlan]
    n_regions: int
    n_slots: int | None           # per-field slot count; None = all regions fit
    resident: bool
    eviction: str
    prefetch_depth: int | None
    total_sweeps: int
    estimate: dict[str, Any] | None
    loop_invariant_halos: tuple[str, ...]
    decisions: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ro_fields(self) -> tuple[str, ...]:
        return tuple(n for n, f in self.fields.items() if f.access == "ro")

    def to_json(self) -> str:
        payload = asdict(self)
        payload["ro_fields"] = list(self.ro_fields)
        return json.dumps(payload, indent=2, sort_keys=True, default=str)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _arg_access(kernel: KernelSpec, index: int) -> str:
    if kernel.arg_access is not None and index < len(kernel.arg_access):
        return kernel.arg_access[index]
    return "rw"  # undeclared: conservative


def _walk_with_multiplicity(prog: Program):
    """Yield ``(statement, multiplicity)`` with loop counts multiplied."""
    def _walk(stmts, mult):
        for s in stmts:
            if isinstance(s, Loop):
                yield from _walk(s.body, mult * s.count)
            else:
                yield s, mult
    yield from _walk(prog.statements, 1)


def plan_program(
    prog: Program,
    *,
    machine: MachineSpec | None = None,
    free_memory: int | None = None,
    n_regions: int | None = None,
    n_slots: int | None = None,
    eviction: str | None = None,
    prefetch_depth: int | None = None,
    region_candidates: tuple[int, ...] = DEFAULT_REGION_CANDIDATES,
) -> PlanReport:
    """Derive the full decomposition for ``prog``.

    Explicit ``n_regions``/``n_slots``/``eviction``/``prefetch_depth``
    pin the corresponding knob (the conformance matrix sweeps them);
    everything left ``None`` is chosen by the planner.  ``free_memory``
    caps the device working set (defaults to the machine's GPU memory
    minus its reservation).
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    prog.validate()
    ndim = len(prog.domain)
    itemsize = prog.dtype.itemsize
    names = prog.field_names()
    if not names:
        raise PlanError("program has no fields: nothing to plan")
    decisions: list[str] = []

    # -- access sets and per-field halo requirements ----------------------
    halo_req: dict[str, list[int]] = {n: [0] * ndim for n in names}
    written: dict[str, bool] = {n: False for n in names}
    stencil_read: dict[str, bool] = {n: False for n in names}
    groups = _UnionFind()        # co-iteration + swap: must share ghost width
    aliases = _UnionFind()       # swap only: share the same data over time
    for n in names:
        groups.find(n)
        aliases.find(n)

    steps = [s for s, _m in _walk_with_multiplicity(prog) if isinstance(s, Step)]
    for s, _mult in _walk_with_multiplicity(prog):
        if isinstance(s, Step):
            for i, fname in enumerate(s.fields):
                acc = _arg_access(s.kernel, i)
                if acc in ("w", "rw"):
                    written[fname] = True
                if acc == "w":
                    continue
                for axis, (lo, hi) in enumerate(s.kernel.arg_footprint(i, ndim)):
                    r = max(-lo, hi)
                    if r:
                        stencil_read[fname] = True
                        halo_req[fname][axis] = max(halo_req[fname][axis], r)
            for other in s.fields[1:]:
                groups.union(s.fields[0], other)
        elif isinstance(s, Reduce):
            for other in s.fields[1:]:
                groups.union(s.fields[0], other)
        elif isinstance(s, Swap):
            groups.union(s.a, s.b)
            aliases.union(s.a, s.b)

    # unify ghost widths inside each co-iteration group: compute() (and
    # reduce_field's compatibility check) require equal ghosts
    halo: dict[str, tuple[int, ...]] = {}
    members: dict[str, list[str]] = {}
    for n in names:
        members.setdefault(groups.find(n), []).append(n)
    for root, group in members.items():
        merged = tuple(
            max(halo_req[m][axis] for m in group) for axis in range(ndim)
        )
        for m in group:
            halo[m] = merged
        if any(merged) and len(group) > 1:
            decisions.append(
                f"ghost width {merged} unified across co-iterated fields "
                f"{sorted(group)}"
            )

    # -- read-only proof over swap-alias groups ---------------------------
    alias_written: dict[str, bool] = {}
    for n in names:
        root = aliases.find(n)
        alias_written[root] = alias_written.get(root, False) or written[n]
    access: dict[str, str] = {}
    for n in names:
        if not alias_written[aliases.find(n)]:
            access[n] = "ro"
            decisions.append(
                f"field {n!r} proven read-only (no step writes its alias "
                "group): device evictions and flushes skip the write-back"
            )
        else:
            access[n] = "rw"

    # -- dominant kernel + sweep count for the analytic model -------------
    total_sweeps = sum(m for s, m in _walk_with_multiplicity(prog)
                       if isinstance(s, Step))
    domain_cells = math.prod(prog.domain)
    dominant: KernelSpec | None = None
    if steps:
        probe = max(1, domain_cells // 64)
        weight: dict[int, float] = {}
        by_id: dict[int, KernelSpec] = {}
        for s, mult in _walk_with_multiplicity(prog):
            if not isinstance(s, Step):
                continue
            k = s.kernel
            by_id[id(k)] = k
            weight[id(k)] = weight.get(id(k), 0.0) + mult * k.duration_on_gpu(
                machine, probe
            )
        dominant = by_id[max(weight, key=weight.get)]
        decisions.append(f"dominant kernel: {dominant.name!r}")

    # -- memory fit: resident vs streaming --------------------------------
    if free_memory is None:
        free_memory = machine.gpu.memory_bytes - machine.gpu.reserved_bytes
    max_halo = max((h for hs in halo.values() for h in hs), default=0)
    total_bytes = sum(
        math.prod(s + 2 * h for s, h in zip(prog.domain, halo[n])) * itemsize
        for n in names
    )
    resident = total_bytes <= free_memory
    decisions.append(
        f"working set {total_bytes} B vs {free_memory} B free: "
        + ("resident" if resident else "streaming")
    )

    # -- region count ------------------------------------------------------
    if n_regions is None:
        candidates = tuple(c for c in region_candidates if c <= prog.domain[0])
        if not candidates:
            candidates = (1,)
        if dominant is None:
            n_regions = candidates[0]
        else:
            n_regions = autotune_region_count(
                machine,
                kernel=dominant,
                domain_cells=domain_cells,
                steps=max(1, total_sweeps),
                candidates=candidates,
                strategy="model",
                resident=resident,
                fields=len(names),
                result_fields=sum(1 for n in names if written[n]) or 1,
                ghost_width=max_halo,
            )
        decisions.append(f"model-tuned n_regions = {n_regions}")
    else:
        if n_regions < 1 or n_regions > prog.domain[0]:
            raise PlanError(
                f"n_regions={n_regions} out of range for slab axis extent "
                f"{prog.domain[0]}"
            )
        decisions.append(f"n_regions = {n_regions} (caller-pinned)")

    # -- slots, eviction, prefetch ----------------------------------------
    if n_slots is None and not resident:
        region_interior = (
            -(-prog.domain[0] // n_regions),
            *prog.domain[1:],
        )
        slot_bytes = math.prod(
            s + 2 * h for s, h in zip(region_interior, halo[names[0]])
        ) * itemsize
        fits_total = max(1, int(free_memory // max(1, slot_bytes)))
        n_slots = max(1, min(n_regions, fits_total // len(names)))
        decisions.append(
            f"fair-shared {fits_total} region slots across {len(names)} "
            f"fields: n_slots = {n_slots}"
        )
    if eviction is None:
        eviction = "lru" if resident else "lookahead"
        decisions.append(
            f"eviction = {eviction!r} "
            + ("(resident: nothing to evict)" if resident
               else "(streaming: schedule-aware lookahead)")
        )
    if prefetch_depth is None:
        decisions.append("prefetch depth: auto (sequential sweeps prefetch)")

    # -- analytic estimate for the chosen point ---------------------------
    estimate = None
    if dominant is not None:
        if resident:
            est = estimate_resident(
                machine, dominant,
                domain_cells=domain_cells, steps=max(1, total_sweeps),
                n_regions=n_regions, fields=len(names),
                result_fields=sum(1 for n in names if written[n]) or 1,
                ghost_width=max_halo, itemsize=itemsize,
            )
        else:
            est = estimate_streaming(
                machine, dominant,
                domain_cells=domain_cells, steps=max(1, total_sweeps),
                n_regions=n_regions, fields=len(names), itemsize=itemsize,
            )
        estimate = asdict(est)

    # -- loop-invariant halo proof ----------------------------------------
    invariant = tuple(
        n for n in names
        if stencil_read[n] and access[n] == "ro" and any(halo[n])
    )
    for n in invariant:
        decisions.append(
            f"halo of {n!r} is loop-invariant (stencil-read, never "
            "written): filled once, every repeat elided"
        )

    field_plans = {
        n: FieldPlan(
            name=n, halo=halo[n], access=access[n], written=written[n],
            stencil_read=stencil_read[n],
            group=tuple(sorted(members[groups.find(n)])),
        )
        for n in names
    }
    return PlanReport(
        domain=prog.domain,
        dtype=str(prog.dtype),
        fields=field_plans,
        n_regions=n_regions,
        n_slots=n_slots,
        resident=resident,
        eviction=eviction,
        prefetch_depth=prefetch_depth,
        total_sweeps=total_sweeps,
        estimate=estimate,
        loop_invariant_halos=invariant,
        decisions=tuple(decisions),
    )
