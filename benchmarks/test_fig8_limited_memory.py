"""Figure 8: full memory vs 2-slot limited memory vs single region (§VI-C)."""

from repro.bench import figures


def test_fig8_limited_memory(run_once, results_dir):
    table = run_once(figures.figure8)
    print()
    print(table.format())
    table.save_json(results_dir / "fig8.json")

    full = table.row_by("configuration", "tida-acc")
    limited = table.row_by("configuration", "tida-acc limited memory")
    one = table.row_by("configuration", "tida-acc 1 region")

    assert limited[2] == 2   # the paper's "only two regions fit" setup
    # "almost the same performance with the available memory case"
    assert abs(limited[1] - full[1]) / full[1] < 0.02
    # "for the one region case, the library does not introduce any overhead"
    assert abs(one[1] - full[1]) / full[1] < 0.02
