"""EventCalendar heap semantics, clock-listener snapshots, cached nbytes.

The heap-driven event core replaces the runtime's per-op deque
bookkeeping; its contract is that per-key depths after a global prune
match what per-key deques would have reported, with deterministic
tie-breaks, so every recorded queue-depth sample stays byte-identical.
"""

import heapq
import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventCalendar, HostClock


class TestEventCalendar:
    def test_push_returns_growing_depth(self):
        cal = EventCalendar()
        assert cal.push("e", 1.0) == 1
        assert cal.push("e", 2.0) == 2
        assert cal.push("s", 1.5) == 1
        assert len(cal) == 3

    def test_prune_retires_due_events(self):
        cal = EventCalendar()
        for t in (1.0, 2.0, 3.0):
            cal.push("e", t)
        assert cal.prune(2.0) == 2          # 1.0 and 2.0 are due (<= now)
        assert cal.depth("e") == 1
        assert cal.next_time() == 3.0

    def test_depth_is_per_key_after_global_prune(self):
        # the deque-equivalence property: one global prune, per-key counts
        cal = EventCalendar()
        cal.push("a", 1.0)
        cal.push("b", 5.0)
        cal.push("a", 6.0)
        cal.push("b", 7.0)
        cal.prune(5.0)
        assert cal.depth("a") == 1
        assert cal.depth("b") == 1

    def test_equal_times_pop_in_issue_order_with_mixed_keys(self):
        # keys are never compared: tuples and strings coexist at one time
        cal = EventCalendar()
        cal.push(("e", "h2d"), 2.0)
        cal.push("stream-3", 2.0)
        cal.push(("s", 1), 2.0)
        assert cal.prune(2.0) == 3
        assert len(cal) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="completion time"):
            EventCalendar().push("e", -1.0)

    def test_clear_empties_but_keeps_seq_monotone(self):
        cal = EventCalendar()
        cal.push("e", 1.0)
        cal.clear()
        assert len(cal) == 0 and cal.depth("e") == 0
        # events pushed after a clear still order after pre-clear ones
        # (seq never rewinds, so stale heap snapshots cannot collide)
        cal.push("e", 1.0)
        assert cal._heap[0][1] >= 1

    def test_next_time_none_when_idle(self):
        cal = EventCalendar()
        assert cal.next_time() is None
        cal.push("e", 4.0)
        cal.prune(4.0)
        assert cal.next_time() is None

    def test_matches_reference_deque_depths(self):
        # differential against the retired implementation: per-key deques
        # pruned per observation must agree with the global heap
        import collections
        import random

        rng = random.Random(7)
        cal = EventCalendar()
        deques: dict[str, collections.deque] = collections.defaultdict(
            collections.deque
        )
        tails: dict[str, float] = collections.defaultdict(float)
        now = 0.0
        for _ in range(300):
            now += rng.random() * 0.1
            key = rng.choice("abc")
            # FIFO precondition: completion times are monotone per key
            # (each op starts no earlier than the key's current tail)
            end = max(tails[key], now) + rng.random()
            tails[key] = end
            cal.prune(now)
            for q in deques.values():
                while q and q[0] <= now:
                    q.popleft()
            got = cal.push(key, end)
            deques[key].append(end)
            assert got == len(deques[key])


class TestClockListenerSnapshot:
    """Listeners may detach (or attach) during fan-out without corruption."""

    def test_listener_unsubscribing_itself_mid_fanout(self):
        clock = HostClock()
        seen = []

        def flaky(now):
            seen.append(("flaky", now))
            clock.unsubscribe(flaky)

        def steady(now):
            seen.append(("steady", now))

        clock.subscribe(flaky)
        clock.subscribe(steady)
        clock.advance(1.0)
        # both listeners of the snapshot ran, despite the mid-loop removal
        assert ("flaky", 1.0) in seen and ("steady", 1.0) in seen
        clock.advance(1.0)
        assert ("flaky", 2.0) not in seen and ("steady", 2.0) in seen

    def test_listener_subscribing_another_mid_advance_to(self):
        clock = HostClock()
        calls = []

        def late(now):
            calls.append("late")

        def early(now):
            calls.append("early")
            clock.subscribe(late)

        clock.subscribe(early)
        clock.advance_to(2.0)      # late joins during fan-out: not called yet
        assert calls == ["early"]
        clock.advance_to(3.0)
        assert calls == ["early", "late", "early"] or calls == [
            "early", "early", "late"]


class TestCachedNbytes:
    """Buffer sizes are computed once at construction, not per access."""

    def test_device_buffer_nbytes_is_plain_attribute(self, tiny_runtime):
        buf = tiny_runtime.malloc((8, 4), label="d")
        assert buf.nbytes == 8 * 4 * buf.dtype.itemsize
        # a slot set at construction, not a property recomputed per access
        assert not isinstance(vars(type(buf)).get("nbytes"), property)

    def test_host_buffer_size_and_nbytes_cached(self, tiny_runtime):
        buf = tiny_runtime.malloc_pinned((3, 5, 7), label="h")
        assert buf.size == math.prod((3, 5, 7))
        assert buf.nbytes == buf.size * buf.dtype.itemsize
        assert not isinstance(vars(type(buf)).get("nbytes"), property)
        assert not isinstance(vars(type(buf)).get("size"), property)

    def test_timing_mode_buffers_still_know_their_size(self, tiny_machine):
        from repro.cuda.runtime import CudaRuntime

        rt = CudaRuntime(tiny_machine, mode="timing")
        buf = rt.malloc((16, 16), label="d")
        assert buf.nbytes == 16 * 16 * 8   # no array needed for accounting
