"""Figure 6: compute-intensive 512^3 execution times across builds (§VI-B)."""

from repro.bench import figures


def test_fig6_compute_intensive(run_once, results_dir):
    table = run_once(figures.figure6)
    print()
    print(table.format())
    table.save_json(results_dir / "fig6.json")

    t = {r[0]: r[1] for r in table.rows}
    # PGI math codegen (OpenACC, TiDA-acc) beats NVCC + CUDA libm
    assert t["openacc-pageable"] < t["cuda"]
    assert t["tida-acc"] < t["cuda"]
    # --use_fast_math restores fairness: comparable to the PGI builds
    assert t["cuda-pinned-fastmath"] < t["cuda-pinned"] < t["cuda"]
    assert abs(t["cuda-pinned-fastmath"] - t["tida-acc"]) / t["tida-acc"] < 0.35
    # "TiDA-acc performs reasonably well as it does not introduce overhead":
    # at worst a few percent over the best PGI-math build
    assert t["tida-acc"] <= t["openacc-pageable"] * 1.05
