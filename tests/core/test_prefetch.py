"""Lookahead prefetch pipeline: scheduler units, eviction-policy hit-rate
ordering, functional safety under both traversal orders, the dedicated
write-back queue, and the reduce_field multi-field readiness fix."""

import numpy as np
import pytest

from repro.baselines.common import default_init
from repro.baselines.tida_runners import run_tida_compute
from repro.core.library import TidaAcc
from repro.core.prefetch import DEFAULT_PREFETCH_DEPTH, PrefetchScheduler
from repro.core.tile_acc import TileAcc
from repro.cuda.runtime import CudaRuntime
from repro.kernels.compute_intensive import compute_intensive_kernel
from repro.kernels.reductions import dot_reduction
from repro.openacc.runtime import AccRuntime
from repro.tida.tile_array import TileArray


def cache_total(metrics, stat):
    return sum(v for k, v in metrics["counters"].items()
               if k.startswith(f"cache.{stat}."))


def run_sweep(machine, *, order, prefetch_depth=None, eviction="lru",
              steps=3, seed=11):
    """Drive compute() through a TileIterator for a few cyclic sweeps."""
    lib = TidaAcc(machine, functional=True,
                  prefetch_depth=prefetch_depth, eviction=eviction)
    lib.add_array("data", (24, 24), n_regions=6, halo=0, n_slots=3)
    lib.field("data").from_global(default_init((24, 24), 0))
    kernel = compute_intensive_kernel(1)
    for _ in range(steps):
        it = lib.iterator("data", order=order, seed=seed).reset(gpu=True)
        while it.is_valid():
            lib.compute(it, kernel, params={"kernel_iteration": 1})
            it.next()
    result = lib.gather("data")
    return result, lib.metrics.snapshot()


class _FakeIterator:
    def __init__(self, known):
        self.schedule_known = known


class TestPrefetchScheduler:
    def test_depth_resolution_precedence(self):
        sched = PrefetchScheduler()
        known = _FakeIterator(True)
        assert sched.resolve_depth(None) == 0
        assert sched.resolve_depth(_FakeIterator(False)) == 0
        assert sched.resolve_depth(known) == DEFAULT_PREFETCH_DEPTH
        assert sched.resolve_depth(known, override=5) == 5
        assert sched.resolve_depth(known, override=0) == 0

    def test_library_default_between_override_and_builtin(self):
        sched = PrefetchScheduler(default_depth=3)
        known = _FakeIterator(True)
        assert sched.resolve_depth(known) == 3
        assert sched.resolve_depth(known, override=1) == 1
        # even an explicit override cannot enable speculation blind
        assert sched.resolve_depth(_FakeIterator(False), override=4) == 0

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            PrefetchScheduler(default_depth=-1)


class TestEvictionPolicyOrdering:
    def test_lookahead_beats_lru_and_modulo_on_cyclic_sweep(self, machine):
        """Demand paging only (depth 0): on a cyclic sweep of 6 regions
        over 3 slots, LRU always evicts the next-needed region (zero
        hits), the paper's modulo mapping conflict-misses every access,
        and Belady-style lookahead retains slots across passes."""
        hits = {}
        for eviction in ("modulo", "lru", "lookahead"):
            _, metrics = run_sweep(machine, order="sequential",
                                   prefetch_depth=0, eviction=eviction)
            hits[eviction] = cache_total(metrics, "hits")
        assert hits["lookahead"] > hits["lru"]
        assert hits["lookahead"] > hits["modulo"]

    def test_all_policies_agree_functionally(self, machine):
        results = [
            run_sweep(machine, order="sequential", prefetch_depth=0,
                      eviction=eviction)[0]
            for eviction in ("modulo", "lru", "lookahead")
        ]
        assert results[0].tobytes() == results[1].tobytes() == results[2].tobytes()


class TestPrefetchPipeline:
    def test_sequential_prefetch_is_byte_identical(self, machine):
        base, base_metrics = run_sweep(machine, order="sequential",
                                       prefetch_depth=0, eviction="modulo")
        pf, pf_metrics = run_sweep(machine, order="sequential",
                                   prefetch_depth=2, eviction="lookahead")
        assert base.tobytes() == pf.tobytes()
        assert cache_total(base_metrics, "prefetch_issued") == 0
        assert cache_total(pf_metrics, "prefetch_issued") > 0
        assert cache_total(pf_metrics, "prefetch_useful") > 0
        assert cache_total(pf_metrics, "stall_seconds_avoided") > 0.0

    def test_shuffled_order_degrades_to_demand_paging(self, machine):
        """An unknown schedule must not speculate: no prefetches are
        issued, and the result still matches the sequential sweep (the
        kernel is region-local, so traversal order cannot matter)."""
        base, _ = run_sweep(machine, order="sequential",
                            prefetch_depth=0, eviction="modulo")
        shuf, metrics = run_sweep(machine, order="shuffled",
                                  prefetch_depth=2, eviction="lookahead")
        assert cache_total(metrics, "prefetch_issued") == 0
        assert cache_total(metrics, "prefetch_useful") == 0
        assert base.tobytes() == shuf.tobytes()

    def test_prefetch_faster_than_demand_in_limited_memory(self, machine):
        """Timing mode, the BENCH_prefetch configuration at small scale:
        the pipeline must beat demand paging by a clear margin."""
        common = dict(shape=(128, 128, 128), steps=40, n_regions=12,
                      n_slots=6, kernel_iteration=1)
        demand = run_tida_compute(machine, prefetch_depth=0,
                                  eviction="modulo", **common)
        pf = run_tida_compute(machine, prefetch_depth=1,
                              eviction="lookahead", **common)
        assert pf.elapsed < demand.elapsed * 0.85
        assert cache_total(pf.metrics, "stall_seconds_avoided") > 0.0

    def test_writeback_uses_dedicated_queue(self, machine):
        """Eviction D2H rides its own stream so write-back and the
        replacement upload use both copy engines."""
        rt = CudaRuntime(machine, functional=True)
        acc = AccRuntime(rt)
        ta = TileArray((16,), n_regions=4, ghost=0, runtime=rt, label="f")
        mgr = TileAcc(rt, acc, ta, n_slots=2)
        assert mgr._wb_stream.stream_id not in {
            slot.stream.stream_id for slot in mgr.slots
        }
        mgr.request_device(0)
        mgr.request_device(1)
        mgr.request_device(2)          # evicts region 0 with write-back
        evicts = [e for e in rt.trace if e.name.startswith("evict:")]
        assert len(evicts) == 1
        assert evicts[0].category == "d2h"


class TestReduceFieldReadiness:
    def test_partials_download_waits_for_every_field(self, machine):
        """The batched partials D2H must start only after all reduce
        kernels — including ones gated on the *second* field's uploads —
        have completed (regression: it used to wait only on the first
        field's streams)."""
        lib = TidaAcc(machine, functional=True)
        lib.add_array("x", (48,), n_regions=4, halo=0, n_slots=2)
        lib.add_array("y", (48,), n_regions=4, halo=0, n_slots=2)
        a = np.linspace(0.0, 1.0, 48)
        b = np.linspace(2.0, -1.0, 48)
        lib.field("x").from_global(a)
        lib.field("y").from_global(b)
        val = lib.reduce_field(["x", "y"], dot_reduction())
        assert val == pytest.approx(float(np.dot(a, b)))
        kernels = [e for e in lib.trace if e.name.startswith("reduce:")]
        partials = [e for e in lib.trace if e.name.startswith("d2h:partials")]
        assert kernels and len(partials) == 1
        assert partials[0].start >= max(e.end for e in kernels) - 1e-12
