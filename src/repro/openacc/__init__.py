"""Simulated OpenACC layer (PGI-17.1-shaped).

Directive-based programming surface from §II: ``parallel loop`` /
``kernels`` constructs (compiler-chosen launch geometry), structured and
unstructured data regions with a present table, activity queues
interoperable with CUDA streams (``acc_get_cuda_stream``), and the
``-ta=tesla:pinned`` / ``-ta=tesla:managed`` compiler-flag behaviours.

The performance-relevant compiler behaviours the paper measures are
modelled explicitly: implicit per-construct data movement when arrays are
not present, untuned launch geometry (a fixed efficiency penalty versus
hand-tuned CUDA), and PGI's own math code generation (the
:class:`~repro.config.MathModel` difference behind Fig. 6).
"""

from .compiler import AccFlags
from .data import PresentTable
from .runtime import AccRuntime

__all__ = ["AccRuntime", "AccFlags", "PresentTable"]
