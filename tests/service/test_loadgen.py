"""The deterministic load generator: arrivals, bursts, open/closed loops."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import (
    Arrival,
    LoadGenerator,
    Service,
    TrafficPattern,
)

TENANTS = ("t0", "t1", "t2")
SMALL_KW = {
    "heat": {"shape": (16, 8, 8), "steps": 1},
    "compute": {"shape": (8, 8, 8), "steps": 1, "kernel_iteration": 256},
}


def gen(seed=7, **kwargs):
    kwargs.setdefault("workload_kwargs", SMALL_KW)
    return LoadGenerator(seed, TENANTS, **kwargs)


class TestArrivals:
    def test_same_seed_same_arrivals(self):
        assert gen().arrivals(12) == gen().arrivals(12)

    def test_different_seed_different_arrivals(self):
        assert gen(seed=1).arrivals(12) != gen(seed=2).arrivals(12)

    def test_arrival_times_are_sorted_and_positive(self):
        arr = gen().arrivals(20)
        times = [a.t for a in arr]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_bursts_stay_on_one_tenant_with_fixed_spacing(self):
        pattern = TrafficPattern(mean_gap=1e-3, burst_size=3, burst_gap=1e-5)
        arr = gen(pattern=pattern).arrivals(9)
        for i in range(0, 9, 3):
            burst = arr[i:i + 3]
            assert len({a.tenant for a in burst}) == 1
            gaps = [b.t - a.t for a, b in zip(burst, burst[1:])]
            assert gaps == pytest.approx([1e-5, 1e-5])

    def test_exact_job_count_even_mid_burst(self):
        pattern = TrafficPattern(burst_size=4)
        assert len(gen(pattern=pattern).arrivals(10)) == 10

    def test_workload_kwargs_are_attached_sorted(self):
        arr = gen().arrivals(8)
        for a in arr:
            assert isinstance(a, Arrival)
            assert a.kwargs == tuple(sorted(SMALL_KW[a.workload].items()))

    def test_validation(self):
        with pytest.raises(ServiceError):
            LoadGenerator(0, ())
        with pytest.raises(ServiceError):
            LoadGenerator(0, TENANTS, workloads=("nope",))
        with pytest.raises(ServiceError):
            gen().arrivals(0)


def _service():
    svc = Service()
    for t in TENANTS:
        svc.add_tenant(t)
    return svc


class TestReplay:
    def test_open_loop_submits_every_arrival(self):
        svc = _service()
        ids = gen().replay_open(svc, 6)
        report = svc.run()
        svc.close()
        assert len(ids) == 6
        assert sorted(report.jobs) == sorted(ids)
        assert all(report.jobs[j].finished > 0 for j in ids)
        assert report.racy_hazards == 0

    def test_open_loop_replay_is_deterministic(self):
        def run_once():
            svc = _service()
            gen().replay_open(svc, 6)
            svc.run()
            blob = svc.session.to_bytes()
            svc.close()
            return blob
        assert run_once() == run_once()

    def test_closed_loop_runs_jobs_per_tenant(self):
        svc = _service()
        first_wave = gen().replay_closed(svc, jobs_per_tenant=2)
        report = svc.run()
        svc.close()
        assert len(first_wave) == len(TENANTS)
        # each tenant ran exactly jobs_per_tenant jobs
        for t in TENANTS:
            ran = [r for r in report.jobs.values() if r.tenant == t]
            assert len(ran) == 2
        assert report.racy_hazards == 0

    def test_closed_loop_keeps_one_job_in_flight_per_tenant(self):
        svc = _service()
        gen().replay_closed(svc, jobs_per_tenant=3)
        report = svc.run()
        svc.close()
        # a tenant's next job is always submitted after its previous one
        # finished (think time is strictly positive)
        for t in TENANTS:
            runs = sorted((r for r in report.jobs.values() if r.tenant == t),
                          key=lambda r: r.arrival)
            for prev, cur in zip(runs, runs[1:]):
                assert cur.arrival > prev.finished


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
