"""CUDA events: timestamps in the device timeline.

Events support the standard timing idiom (record around a region of
stream work, then ``elapsed_time``) plus cross-stream dependencies via
``stream_wait_event`` on the runtime.
"""

from __future__ import annotations

from ..errors import CudaInvalidResourceHandleError, CudaInvalidValueError


class Event:
    """One CUDA event."""

    __slots__ = ("_time", "_recorded", "_runtime_id")

    def __init__(self, runtime_id: int) -> None:
        self._time = 0.0
        self._recorded = False
        self._runtime_id = runtime_id

    @property
    def recorded(self) -> bool:
        return self._recorded

    @property
    def time(self) -> float:
        """Virtual time this event completes (the stream tail when recorded)."""
        if not self._recorded:
            raise CudaInvalidValueError("event queried before being recorded")
        return self._time

    def _check_usable(self, runtime_id: int) -> None:
        if runtime_id != self._runtime_id:
            raise CudaInvalidResourceHandleError(
                "event belongs to a different runtime/context"
            )

    def _record(self, when: float) -> None:
        self._time = when
        self._recorded = True

    def elapsed_time_ms(self, other: "Event") -> float:
        """Milliseconds from this event to ``other`` (``cudaEventElapsedTime``)."""
        return (other.time - self.time) * 1e3
