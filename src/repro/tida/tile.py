"""Tiles: logical partitions of a region's iteration space (§IV-A).

Unlike regions, tiles are not physically separated — a tile is a box of
iteration points inside one region, plus enough context (its region and
owning tileArray) for the compute machinery to find data pointers and
local index bounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TidaError
from .box import Box
from .region import Region

if TYPE_CHECKING:  # pragma: no cover
    from .tile_array import TileArray


class Tile:
    """One tile: an iteration-space box within a region."""

    __slots__ = ("region", "box", "array")

    def __init__(self, region: Region, box: Box, array: "TileArray | None" = None) -> None:
        if not region.box.contains(box):
            raise TidaError(
                f"tile box {box} escapes region {region.rid} interior {region.box}"
            )
        if box.is_empty:
            raise TidaError("tiles must be non-empty")
        self.region = region
        self.box = box
        self.array = array

    @property
    def rid(self) -> int:
        return self.region.rid

    @property
    def n_cells(self) -> int:
        return self.box.size

    @property
    def local_bounds(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(lo, hi) bounds of this tile inside the region's local array —
        what the compute method passes to the user lambda (§V)."""
        return self.region.local_bounds(self.box)

    def subrange(self, lo: tuple[int, ...], hi: tuple[int, ...]) -> "Tile":
        """A tile restricted to global bounds [lo, hi) (the two-argument
        compute variant of §V)."""
        sub = self.box.intersect(Box(lo, hi))
        if sub.is_empty:
            raise TidaError(f"subrange [{lo}, {hi}) does not intersect tile {self.box}")
        return Tile(self.region, sub, self.array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tile(region={self.region.rid}, box={self.box})"
