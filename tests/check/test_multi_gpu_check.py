"""Hazard checking across a multi-GPU group: one clock space, peer copies."""

import pytest

from repro.errors import HazardError
from repro.multi.heat import run_multi_gpu_heat
from repro.multi.runtime import MultiGpuRuntime


class TestSharedChecker:
    def test_one_checker_spans_all_devices(self, machine):
        multi = MultiGpuRuntime(machine, n_devices=2, check="observe")
        assert multi.checker is not None
        for dev in multi.devices:
            assert dev.checker is multi.checker

    def test_unchecked_group_disables_device_defaults(self, machine):
        multi = MultiGpuRuntime(machine, n_devices=2, check=False)
        assert multi.checker is None
        for dev in multi.devices:
            assert dev.checker is None

    def test_peer_copy_with_after_edge_is_clean(self, machine):
        multi = MultiGpuRuntime(machine, n_devices=2, check="observe")
        d0, d1 = multi.devices
        a = d0.malloc(1024, label="a")
        b = d1.malloc(1024, label="b")
        h = d0.malloc_pinned(1024, label="h")
        end = d0.memcpy_async(a, h, d0.create_stream())
        multi.peer_copy(1, b, 0, a, after=end)
        assert multi.checker.hazards == []
        assert multi.checker.op_count == 2

    def test_unordered_peer_copy_is_racy(self, machine):
        multi = MultiGpuRuntime(machine, n_devices=2, check="strict")
        d0, d1 = multi.devices
        a = d0.malloc(1024, label="a")
        b = d1.malloc(1024, label="b")
        h = d0.malloc_pinned(1024, label="h")
        d0.memcpy_async(a, h, d0.create_stream())
        with pytest.raises(HazardError) as exc:
            # reads a on a fresh stream with no edge to the upload
            multi.peer_copy(1, b, 0, a,
                            src_stream=d0.create_stream(),
                            dst_stream=d1.create_stream())
        assert exc.value.hazard.kind == "RAW"

    def test_peer_copy_event_ticks_both_devices(self, machine):
        # the peer copy is ONE event on two streams: a consumer ordered
        # after it on either device covers it
        multi = MultiGpuRuntime(machine, n_devices=2, check="observe")
        d0, d1 = multi.devices
        a = d0.malloc(1024, label="a")
        b = d1.malloc(1024, label="b")
        hb = d1.malloc_pinned(1024, label="hb")
        s1 = d1.create_stream()
        end = multi.peer_copy(1, b, 0, a, dst_stream=s1)
        d1.memcpy_async(hb, b, s1)  # same stream: FIFO after the peer write
        assert multi.checker.hazards == []
        assert end > 0


class TestMultiGpuHeatConformance:
    def test_strict_run_is_hazard_free_and_correct(self, machine):
        checked = run_multi_gpu_heat(
            machine, shape=(48, 24, 24), steps=2, n_devices=2,
            regions_per_device=4, functional=True, check="strict",
        )
        counters = checked.metrics["counters"]
        assert counters.get("check.ops", 0) > 0
        assert counters.get("check.hazards", 0) == 0

        from repro.check.explore import digest

        plain = run_multi_gpu_heat(
            machine, shape=(48, 24, 24), steps=2, n_devices=2,
            regions_per_device=4, functional=True,
        )
        assert digest(checked.result) == digest(plain.result)
