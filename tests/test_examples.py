"""Every example script must run end-to-end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("heat_3d.py", ["--size", "64", "--regions", "4", "--steps", "1", "5"]),
    ("out_of_core.py", ["--size", "128", "--regions", "8", "--steps", "4"]),
    ("image_blur.py", ["--size", "32", "--grid", "2", "--passes", "2"]),
    ("wave_2d.py", ["--size", "32", "--regions", "2", "--steps", "5"]),
    ("autotune_regions.py", ["--size", "128", "--steps", "1"]),
    ("conjugate_gradient.py", ["--size", "10", "--regions", "2"]),
    ("multi_gpu_heat.py", ["--size", "64", "--steps", "2"]),
    ("profile_run.py", ["--size", "128", "--regions", "4", "--steps", "2"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"
