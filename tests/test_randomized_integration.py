"""Randomized full-pipeline integration: hypothesis drives whole heat solves.

One test to rule out configuration-dependent bugs: random shapes, region
counts, slot limits, boundary conditions, tile shapes and step counts —
every combination must match the pure-numpy reference exactly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import run_tida_heat
from repro.baselines.common import default_init, reference_heat
from repro.config import k40m_pcie3
from repro.tida.boundary import Dirichlet, Neumann, Periodic


config_strategy = st.fixed_dictionaries(
    {
        "nx": st.integers(6, 14),
        "ny": st.integers(4, 8),
        "n_regions": st.integers(1, 4),
        "slots": st.sampled_from([None, 1, 2]),
        "steps": st.integers(1, 5),
        "bc": st.sampled_from([Neumann(), Dirichlet(0.25), Periodic()]),
        "gpu": st.booleans(),
        "split_tiles": st.booleans(),
    }
)


@given(cfg=config_strategy)
@settings(max_examples=25, deadline=None)
def test_random_heat_configurations_match_reference(cfg):
    shape = (cfg["nx"], cfg["ny"], 6)
    if cfg["n_regions"] > cfg["nx"]:
        return
    n_slots = cfg["slots"]
    if n_slots is not None:
        n_slots = min(n_slots, cfg["n_regions"])
    tile_shape = None
    if cfg["split_tiles"] and cfg["n_regions"] <= cfg["nx"] // 2:
        slab = -(-cfg["nx"] // cfg["n_regions"])  # ceil
        tile_shape = (max(1, slab // 2), cfg["ny"], 6)

    init = default_init(shape, 1)
    ref = reference_heat(init, cfg["steps"], coef=0.1, bc=cfg["bc"], ghost=1)
    r = run_tida_heat(
        k40m_pcie3(),
        shape=shape,
        steps=cfg["steps"],
        n_regions=cfg["n_regions"],
        n_slots=n_slots,
        bc=cfg["bc"],
        gpu=cfg["gpu"],
        tile_shape=tile_shape,
        functional=True,
        initial=init[1:-1, 1:-1, 1:-1].copy(),
    )
    np.testing.assert_allclose(r.result, ref, err_msg=f"config: {cfg}")
