#!/usr/bin/env python
"""2-D wave equation with three tiled fields (u_next, u, u_prev).

Shows the multi-tile compute signature of §V with *three* inputs, and a
three-way field rotation per time step.  A Gaussian pulse propagates
outward under Dirichlet walls; energy statistics and correctness against
a numpy reference are printed.

Run:  python examples/wave_2d.py [--size 128] [--regions 4] [--steps 50]
"""

import argparse

import numpy as np

from repro import Dirichlet, TidaAcc, wave_kernel
from repro.baselines.common import apply_bc_global
from repro.kernels.wave import wave_reference_step


def reference(u0: np.ndarray, steps: int, c2: float) -> np.ndarray:
    full = np.zeros((u0.shape[0] + 2, u0.shape[1] + 2))
    full[1:-1, 1:-1] = u0
    prev = full.copy()
    for _ in range(steps):
        apply_bc_global(full, 1, Dirichlet(0.0))
        nxt = wave_reference_step(full, prev, c2=c2)
        prev, full = full, nxt
    return full[1:-1, 1:-1].copy()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--regions", type=int, default=4)
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--c2", type=float, default=0.25)
    args = parser.parse_args()

    shape = (args.size, args.size)
    y, x = np.mgrid[0:args.size, 0:args.size]
    c = args.size / 2
    u0 = np.exp(-((x - c) ** 2 + (y - c) ** 2) / (args.size / 8) ** 2)

    lib = TidaAcc()
    for name in ("u_next", "u", "u_prev"):
        lib.add_array(name, shape, n_regions=args.regions, halo=1)
    lib.scatter("u", u0)
    lib.scatter("u_prev", u0)

    kernel = wave_kernel(2)
    for _ in range(args.steps):
        lib.fill_boundary("u", Dirichlet(0.0))
        it = lib.iterator("u_next", "u", "u_prev").reset(gpu=True)
        while it.is_valid():
            lib.compute(it, kernel, params={"c2": args.c2})
            it.next()
        lib.swap("u_prev", "u")
        lib.swap("u", "u_next")

    out = lib.gather("u")
    ref = reference(u0, args.steps, args.c2)
    assert np.allclose(out, ref), "wave solution diverged from numpy reference"

    print(f"wave {shape}, {args.steps} steps, {args.regions} regions "
          f"(verified against numpy)")
    print(f"  initial pulse peak : {u0.max():.4f}")
    print(f"  final peak         : {out.max():.4f} (dispersed)")
    print(f"  final field L2     : {np.linalg.norm(out):.4f}")
    print(f"  virtual time       : {lib.now * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
