"""Prefetch benchmark gate: ``python -m repro.bench.prefetch_bench``.

Runs the Fig. 8 limited-memory scenario twice at a small, fixed,
deterministic configuration — demand-paged with the paper's modulo slot
mapping versus the lookahead prefetch pipeline — and writes a run
manifest (``--out``, default ``BENCH_prefetch.json``) holding:

* ``bench.fig8_prefetch.demand_seconds`` / ``prefetch_seconds`` — the
  two virtual wall-clocks (lower is better, so a shrinking prefetch win
  shows up as a ``prefetch_seconds`` regression);
* the prefetch run's full slot-cache counters (``cache.prefetch_issued``,
  ``prefetch_useful``, ``prefetch_wasted``, ``stall_seconds_avoided``, …).

The manifest is the input format of ``python -m repro.obs.report``; CI
regenerates it and gates with ``--compare`` against the committed
baseline.  Before timing, both modes run functionally on a small domain
and their results must be byte-identical — the pipeline may only move
transfers, never change data.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from ..baselines.common import default_init
from ..baselines.tida_runners import run_tida_compute
from ..obs import metrics as obs_metrics
from ..obs.metrics import MetricsRegistry

#: The fixed gate configuration.  Small enough to run in ~1 s, large
#: enough that the limited-memory sweep (12 regions cycling through 6
#: slots) is transfer-bound and the prefetch win is well over the 20%
#: acceptance bar.  Do not change without regenerating BENCH_prefetch.json.
SHAPE = (256, 256, 256)
STEPS = 40
N_REGIONS = 12
N_SLOTS = 6
KERNEL_ITERATION = 1
PREFETCH_DEPTH = 1

DEMAND = dict(prefetch_depth=0, eviction="modulo")
PREFETCH = dict(prefetch_depth=PREFETCH_DEPTH, eviction="lookahead")


def functional_check() -> bool:
    """Demand and prefetch modes must produce byte-identical results."""
    shape, steps = (32, 32, 32), 5
    init = default_init(shape, 0)
    results = []
    for kw in (DEMAND, PREFETCH):
        r = run_tida_compute(
            shape=shape, steps=steps, n_regions=N_REGIONS, n_slots=N_SLOTS,
            kernel_iteration=KERNEL_ITERATION, functional=True,
            initial=init.copy(), **kw,
        )
        results.append(r.result)
    return results[0].tobytes() == results[1].tobytes()


def run(out: Path) -> int:
    if not functional_check():
        print("FAIL: prefetch pipeline changed functional results", file=sys.stderr)
        return 1
    print("functional check: demand and prefetch results byte-identical")

    demand = run_tida_compute(
        shape=SHAPE, steps=STEPS, n_regions=N_REGIONS, n_slots=N_SLOTS,
        kernel_iteration=KERNEL_ITERATION, **DEMAND,
    )
    # only the prefetch run's runtime counters enter the manifest, so the
    # gate watches the pipeline's own hit/waste/stall numbers undiluted
    obs_metrics.start_collection()
    prefetch = run_tida_compute(
        shape=SHAPE, steps=STEPS, n_regions=N_REGIONS, n_slots=N_SLOTS,
        kernel_iteration=KERNEL_ITERATION, **PREFETCH,
    )
    bench = MetricsRegistry()
    bench.counter("bench.fig8_prefetch.demand_seconds").inc(demand.elapsed)
    bench.counter("bench.fig8_prefetch.prefetch_seconds").inc(prefetch.elapsed)
    snapshot = obs_metrics.collect()

    win = 1.0 - prefetch.elapsed / demand.elapsed
    print(f"demand (modulo):       {demand.elapsed:.6f} s")
    print(f"prefetch (lookahead):  {prefetch.elapsed:.6f} s")
    print(f"win:                   {win:.1%}")

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {"schema": "repro-run-manifest/1", "metrics": snapshot}, indent=2
    ) + "\n")
    print(f"wrote {len(snapshot['counters'])} counters to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_prefetch.json",
                        help="run-manifest output path (default BENCH_prefetch.json)")
    args = parser.parse_args(argv)
    return run(Path(args.out))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
