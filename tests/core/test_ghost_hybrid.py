"""Hybrid CPU/GPU ghost update: correctness vs the host path, and overlap."""

import numpy as np
import pytest

from repro.core.library import TidaAcc
from repro.tida.boundary import Dirichlet, Neumann, Periodic
from repro.tida.tile_array import TileArray


def fresh_lib(machine, shape, spec, fill_data, ghost=1, **lib_kw):
    lib = TidaAcc(machine, functional=True, **lib_kw)
    lib.add_array("u", shape, halo=ghost, **spec)
    lib.field("u").from_global(fill_data)
    return lib


def host_reference(shape, spec, data, bc, ghost=1):
    """Plain TiDA host-side exchange as the oracle."""
    ta = TileArray(shape, ghost=ghost, **spec)
    ta.from_global(data)
    ta.fill_boundary(bc)
    return ta


@pytest.mark.parametrize("bc", [Neumann(), Dirichlet(1.5), Periodic(), None])
@pytest.mark.parametrize("shape,spec", [
    ((12,), {"n_regions": 3}),
    ((8, 8), {"region_shape": (4, 4)}),
    ((6, 6, 6), {"n_regions": 3}),
])
def test_device_update_matches_host_path(machine, bc, shape, spec):
    rng = np.random.default_rng(3)
    data = rng.random(shape)
    lib = fresh_lib(machine, shape, spec, data)
    # put every region on the device first so the GPU path is taken
    mgr = lib.manager("u")
    for rid in range(lib.field("u").n_regions):
        mgr.request_device(rid)
    lib.fill_boundary("u", bc)
    oracle = host_reference(shape, spec, data, bc)
    mgr.flush_to_host()
    for region, ref_region in zip(lib.field("u").regions, oracle.regions):
        np.testing.assert_array_equal(region.array, ref_region.array)


def test_device_path_used_when_resident(machine):
    data = np.arange(12, dtype=float)
    lib = fresh_lib(machine, (12,), {"n_regions": 3}, data)
    mgr = lib.manager("u")
    for rid in range(3):
        mgr.request_device(rid)
    lib.fill_boundary("u", Neumann())
    ghost_kernels = [e for e in lib.trace if e.name.startswith(("ghost:", "bc-faces"))]
    assert ghost_kernels, "expected device-side ghost kernels"
    assert all(mgr.is_on_device(rid) for rid in range(3))


def test_host_fallback_when_regions_on_host(machine):
    data = np.arange(12, dtype=float)
    lib = fresh_lib(machine, (12,), {"n_regions": 3}, data)
    lib.fill_boundary("u", Neumann())  # nothing resident: host path
    assert not [e for e in lib.trace if e.name.startswith("ghost:")]
    assert [e for e in lib.trace if e.name.startswith("fill_boundary-host")]


def test_mixed_residency_falls_back_consistently(machine):
    """One region on device, neighbours on host: everything lands on host
    and the values still match the oracle."""
    data = np.arange(12, dtype=float)
    lib = fresh_lib(machine, (12,), {"n_regions": 3}, data)
    lib.manager("u").request_device(1)
    lib.fill_boundary("u", Neumann())
    oracle = host_reference((12,), {"n_regions": 3}, data, Neumann())
    lib.manager("u").flush_to_host()
    for region, ref_region in zip(lib.field("u").regions, oracle.regions):
        np.testing.assert_array_equal(region.array, ref_region.array)


def test_zero_ghost_is_noop(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (12,), n_regions=3, halo=0)
    t0 = lib.now
    lib.fill_boundary("u", Neumann())
    assert lib.now == t0
    assert len(lib.trace) == 0


def test_host_index_work_overlaps_gpu_kernels(machine):
    """Fig. 4's property: index computation (host lane) overlaps the ghost
    kernels (compute lane) in virtual time."""
    lib = TidaAcc(machine, functional=False)
    lib.add_array("u", (64, 64, 64), n_regions=8, halo=1)
    mgr = lib.manager("u")
    for rid in range(8):
        mgr.request_device(rid)
    lib.synchronize()
    start = len(lib.trace)
    lib.fill_boundary("u", Neumann())
    events = lib.trace.events[start:]
    host_idx = [e for e in events if e.name.startswith(("ghost-idx", "bc-idx"))]
    kernels = [e for e in events if e.category == "kernel"]
    assert host_idx and kernels
    # at least one index computation runs while some kernel executes
    overlapped = any(
        h.start < k.end and k.start < h.end for h in host_idx for k in kernels
    )
    assert overlapped


def test_update_keeps_timestep_loop_correct_with_limited_memory(machine):
    """Ghost exchange with eviction in the mix (regions 0 and 2 share a slot)."""
    from repro.baselines.common import reference_heat, default_init
    from repro.kernels.heat import heat_kernel
    shape = (12,)
    init = default_init(shape, 1)
    lib = TidaAcc(machine)
    lib.add_array("old", shape, n_regions=3, halo=1, n_slots=2)
    lib.add_array("new", shape, n_regions=3, halo=1, n_slots=2)
    lib.field("old").from_global(init[1:-1])
    lib.field("new").from_global(init[1:-1])
    k = heat_kernel(1)
    for _ in range(4):
        lib.fill_boundary("old", Neumann())
        for dst_t, src_t in lib.iterator("new", "old").reset(gpu=True):
            lib.compute((dst_t, src_t), k, gpu=True, params={"coef": 0.1})
        lib.swap("old", "new")
    ref = reference_heat(init, 4, coef=0.1, bc=Neumann(), ghost=1)
    np.testing.assert_allclose(lib.gather("old"), ref)
