"""QoS: slot shares follow weights, priority preempts, runs replay.

Weights shape *rates*, not totals — every job eventually runs all of
its work, so summed busy time equalizes at drain.  The observable share
is temporal: while both tenants are backlogged, a weight-2 tenant
progresses twice as fast, so by the time it drains its backlog the
weight-1 tenant has finished half as many identical jobs.  Priority is
a strict tier above weights: under a best-effort flood the priority
tenant's tail latency must beat the flood's and never lose to the same
tenant demoted to best-effort.  And the whole schedule is a pure
function of the submission sequence: one seed, one session byte stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import Service

COMPUTE_KW = {"shape": (16, 8, 8), "steps": 2, "kernel_iteration": 2048}


def _weighted_backlog(w_heavy: float, w_light: float, n_jobs: int = 4):
    svc = Service(total_slots=64)
    svc.add_tenant("heavy", w_heavy)
    svc.add_tenant("light", w_light)
    for tenant in ("heavy", "light"):
        for _ in range(n_jobs):
            svc.submit(tenant, workload="compute",
                       workload_kwargs=dict(COMPUTE_KW, seed=3), at=0.0)
    report = svc.run()
    svc.close()
    return report


def _flooded(priority: bool):
    svc = Service(total_slots=64)
    svc.add_tenant("vip", 1.0, priority=priority)
    for i in range(4):
        svc.add_tenant(f"be{i}")
    for i in range(4):
        svc.submit("vip", workload="heat",
                   workload_kwargs={"shape": (32, 16, 16), "steps": 1, "seed": i},
                   at=i * 1e-3)
    for i in range(4):
        for _ in range(2):
            svc.submit(f"be{i}", workload="compute",
                       workload_kwargs=dict(COMPUTE_KW, seed=10 + i), at=0.0)
    report = svc.run()
    svc.close()
    return report


class TestWeightedShares:
    def test_busy_share_follows_weights(self):
        # identical backlogs at 2:1 weights: when the heavy tenant
        # drains, the light one must have finished half its jobs —
        # that *is* the 2:1 busy-time share over the contended window
        report = _weighted_backlog(2.0, 1.0)
        heavy_done = max(r.finished for r in report.jobs.values()
                         if r.tenant == "heavy")
        light_by_then = sum(
            1 for r in report.jobs.values()
            if r.tenant == "light" and r.finished <= heavy_done
        )
        assert light_by_then == 2
        assert report.racy_hazards == 0

    def test_equal_weights_drain_together(self):
        report = _weighted_backlog(1.0, 1.0)
        heavy_done = max(r.finished for r in report.jobs.values()
                         if r.tenant == "heavy")
        light_done = max(r.finished for r in report.jobs.values()
                         if r.tenant == "light")
        # identical jobs, identical weights: last finishes within one
        # job's service time of each other
        spread = abs(heavy_done - light_done)
        one_job = min(r.latency for r in report.jobs.values())
        assert spread <= one_job

    def test_busy_seconds_are_conserved(self):
        # totals equalize at drain regardless of weights — the share is
        # temporal, never lost work
        report = _weighted_backlog(2.0, 1.0)
        heavy = report.tenants["heavy"]["busy_seconds"]
        light = report.tenants["light"]["busy_seconds"]
        assert heavy == pytest.approx(light, rel=1e-9)


class TestPriority:
    def test_priority_p95_beats_the_flood(self):
        report = _flooded(priority=True)
        vip = float(np.percentile(report.latencies("vip"), 95))
        best_effort = [r.latency for r in report.jobs.values()
                       if r.tenant != "vip"]
        assert vip < 0.6 * float(np.percentile(best_effort, 95))
        assert report.racy_hazards == 0

    def test_priority_never_loses_to_best_effort_self(self):
        # the same arrival sequence with the tenant demoted: its p95
        # must not be better than the priority run's
        prio = float(np.percentile(_flooded(True).latencies("vip"), 95))
        demoted = float(np.percentile(_flooded(False).latencies("vip"), 95))
        assert prio <= demoted


class TestDeterminism:
    def _session_bytes(self):
        svc = Service(total_slots=64)
        svc.add_tenant("a", 2.0, priority=True)
        svc.add_tenant("b", 1.0)
        for i, (tenant, at) in enumerate(
            (("a", 0.0), ("b", 0.0), ("a", 5e-4), ("b", 1e-3))
        ):
            svc.submit(tenant, workload="heat",
                       workload_kwargs={"shape": (16, 8, 8), "steps": 1,
                                        "seed": i}, at=at)
        report = svc.run()
        blob = svc.session.to_bytes()
        svc.close()
        return blob, report

    def test_same_submissions_byte_identical_session(self):
        blob_a, rep_a = self._session_bytes()
        blob_b, rep_b = self._session_bytes()
        assert blob_a == blob_b
        assert rep_a.makespan == rep_b.makespan
        assert sorted(r.digests.items() for r in rep_a.jobs.values()) == \
               sorted(r.digests.items() for r in rep_b.jobs.values())

    def test_session_records_every_job(self):
        blob, report = self._session_bytes()
        text = blob.decode()
        for jid in report.jobs:
            assert jid in text


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
