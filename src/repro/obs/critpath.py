"""Critical-path profiling, overlap attribution, and what-if analysis.

The paper's claim (Figs. 3-7) is that tiled pipelining hides PCIe
transfers behind compute.  Lane utilization says how busy each engine
was; it cannot say *which* operations bound the run.  This module
answers that from the causal run DAG the hazard checker records
(:mod:`repro.check.dag`): every device operation with its strong-order
edges — stream FIFO, event waits, explicit ``after=`` components — plus
the engine-FIFO edge that bound its start on *this* machine, the host
sync it waited for, and the host-only time before its issue.

Three analyses build on the DAG:

* **critical path** (:func:`critical_path`): walk backward from the
  last-finishing operation, always to the predecessor whose completion
  bound the start; intervals where no predecessor was running are
  attributed to the host ("host stall").  The resulting segments
  partition the wall time exactly, so the per-category attribution sums
  to the end-to-end time by construction.
* **overlap efficiency** (:func:`overlap_report`): per iteration (the
  library marks each ``swap``), compare the achieved wall time with the
  ideal ``max(compute, transfer)`` lower bound — the Fig. 3/7 metric,
  computed instead of eyeballed.
* **what-if** (:func:`whatif`, :func:`replay`): re-schedule the DAG
  under perturbed machine parameters (PCIe x2, zero launch latency,
  faster kernels, unlimited slots) keeping the recorded issue order and
  host behaviour fixed, and report predicted speedups plus the link
  speed at which the bottleneck flips from transfer- to compute-bound.

When a run carries only a trace (no checker, hence no DAG),
:meth:`RunDag.from_trace` reconstructs a coarser DAG from stream and
lane FIFO order alone — good enough for the critical path and the
attribution, while host stalls absorb what the missing host edges
cannot explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..check.dag import DagNode, dag_from_json
from ..config import DEFAULT_MACHINE, MachineSpec
from ..sim.trace import Trace

__all__ = [
    "BLAME_COMPONENTS",
    "PathSegment",
    "RunDag",
    "Scenario",
    "WHATIF_SCENARIOS",
    "attribution",
    "blame_decomposition",
    "blame_summary",
    "categorize",
    "critical_path",
    "critpath_metrics",
    "critpath_summary",
    "field_of",
    "flip_point",
    "job_phases",
    "overlap_report",
    "region_of",
    "replay",
    "replay_machine",
    "whatif",
]

#: DAG node kinds that occupy a copy engine (the "transfer" side of the
#: overlap bound); everything else is compute.
TRANSFER_KINDS = ("h2d", "d2h", "peer")

#: Attribution categories, in display order.
CATEGORIES = ("kernel", "h2d", "d2h", "write-back", "ghost", "peer", "host")


def categorize(node: DagNode) -> str:
    """Attribution category of one DAG node, from its kind and label.

    Labels follow the runtime's conventions: ``evict:`` prefixes mark
    slot-eviction write-backs (a D2H the pipeline *caused*, as opposed
    to a requested flush), ``ghost:``/``bc-faces:`` mark the hybrid
    ghost-exchange work of §IV-B.6 regardless of which engine ran it.
    """
    label = node.label
    if label.startswith("evict:"):
        return "write-back"
    if label.startswith(("ghost:", "bc-faces:")):
        return "ghost"
    if node.kind == "peer":
        return "peer"
    if node.kind in ("h2d", "d2h"):
        return node.kind
    return "kernel"


def _label_target(label: str) -> str:
    """The ``field.rN`` token a label acts on (empty when unparseable)."""
    token = label.rsplit(":", 1)[-1]
    return token.split("<-", 1)[0]           # ghost:dst<-src: keep the dst


def field_of(label: str) -> str:
    """Field name a label targets (``"-"`` when it names none)."""
    token = _label_target(label)
    if ".r" in token:
        return token.rsplit(".r", 1)[0]
    return token or "-"


def region_of(label: str) -> str:
    """``field.rN`` region tag of a label (``"-"`` when it names none)."""
    token = _label_target(label)
    return token if ".r" in token else "-"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path: an operation, or a host gap."""

    start: float
    end: float
    category: str
    label: str
    op_id: int | None = None     # None for host-stall gaps

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RunDag:
    """A run's causal DAG plus its iteration boundaries."""

    nodes: tuple[DagNode, ...]
    iteration_marks: tuple[float, ...] = ()

    @property
    def t0(self) -> float:
        return min((n.start for n in self.nodes), default=0.0)

    @property
    def t_end(self) -> float:
        return max((n.end for n in self.nodes), default=0.0)

    @property
    def wall(self) -> float:
        return self.t_end - self.t0

    @classmethod
    def from_nodes(
        cls, nodes: Iterable[DagNode], *, marks: Iterable[float] = ()
    ) -> "RunDag":
        return cls(
            nodes=tuple(sorted(nodes, key=lambda n: n.op_id)),
            iteration_marks=tuple(sorted(marks)),
        )

    @classmethod
    def from_manifest(cls, data: dict[str, Any]) -> "RunDag | None":
        """Load from a run manifest's ``"dag"`` key (None when absent).

        Iteration marks come from the manifest's trace events when
        present (``ph: "i"`` instants named ``iteration``).
        """
        rows = data.get("dag")
        if not rows:
            return None
        marks = [
            e.get("ts", 0.0) / 1e6
            for e in data.get("traceEvents", ())
            if e.get("ph") == "i" and e.get("name") == "iteration"
        ]
        return cls.from_nodes(dag_from_json(rows), marks=marks)

    @classmethod
    def from_trace(cls, trace: Trace) -> "RunDag":
        """Coarse DAG from a bare trace: stream FIFO + lane FIFO edges.

        Without the checker there are no event/after/host edges; the
        critical-path walk charges the unexplained waiting to the host,
        and :func:`replay` treats every issue as immediate.  Use the
        checker-recorded DAG when prediction accuracy matters.
        """
        events = sorted(
            (e for e in trace if e.category in ("h2d", "d2h", "kernel")),
            key=lambda e: (e.start, e.end),
        )
        last_stream: dict[Any, tuple[int, float]] = {}
        last_lane: dict[str, tuple[int, float]] = {}
        nodes: list[DagNode] = []
        for op_id, e in enumerate(events):
            deps: dict[int, str] = {}
            if e.stream is not None and e.stream in last_stream:
                deps.setdefault(last_stream[e.stream][0], "stream")
            if e.lane in last_lane:
                deps.setdefault(last_lane[e.lane][0], "engine")
            nodes.append(DagNode(
                op_id=op_id, kind=e.category, label=e.name,
                start=e.start, end=e.end, issue=e.start, nbytes=e.nbytes,
                streams=((0, e.stream),) if e.stream is not None else (),
                engines=(e.lane,), deps=tuple(sorted(deps.items())),
            ))
            if e.stream is not None:
                last_stream[e.stream] = (op_id, e.end)
            last_lane[e.lane] = (op_id, e.end)
        marks = [m["ts"] for m in trace.marks if m["name"] == "iteration"]
        return cls.from_nodes(nodes, marks=marks)


# -- critical path ----------------------------------------------------------

def critical_path(nodes: Sequence[DagNode]) -> list[PathSegment]:
    """The chain of operations that bound the end-to-end time.

    Walks backward from the last-finishing node, at each step to the
    predecessor (ordering edge or host sync) whose completion was the
    latest — by the scheduling rule ``start = max(issue, dep ends)``
    that predecessor is what the operation actually waited for.  Time
    between the binding predecessor's end and the operation's start is
    host-bound (API overhead, host compute, issue latency) and becomes
    a ``"host"`` segment.  The returned segments tile ``[t0, t_end]``
    exactly, so their durations sum to the wall time.
    """
    if not nodes:
        return []
    by_id = {n.op_id: n for n in nodes}
    t0 = min(n.start for n in nodes)
    sink = max(nodes, key=lambda n: (n.end, n.op_id))
    segments: list[PathSegment] = []
    cur = sink
    while True:
        segments.append(PathSegment(
            start=cur.start, end=cur.end, category=categorize(cur),
            label=cur.label, op_id=cur.op_id,
        ))
        preds = [by_id[d] for d, _kind in cur.deps if d in by_id]
        if cur.host_dep is not None and cur.host_dep in by_id:
            preds.append(by_id[cur.host_dep])
        preds = [p for p in preds if p.op_id < cur.op_id]
        if not preds:
            if cur.start > t0:
                segments.append(PathSegment(
                    start=t0, end=cur.start, category="host", label="(issue)",
                ))
            break
        binding = max(preds, key=lambda p: (p.end, p.op_id))
        if cur.start > binding.end:
            segments.append(PathSegment(
                start=binding.end, end=cur.start, category="host",
                label=f"(waiting to issue {cur.label})",
            ))
        cur = binding
    segments.reverse()
    return segments


def attribution(segments: Sequence[PathSegment]) -> dict[str, float]:
    """Seconds of critical path per category (zero-filled, display order)."""
    out = {c: 0.0 for c in CATEGORIES}
    for seg in segments:
        out[seg.category] = out.get(seg.category, 0.0) + seg.duration
    return out


def _grouped(
    segments: Sequence[PathSegment], key
) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for seg in segments:
        group = key(seg)
        cats = out.setdefault(group, {})
        cats[seg.category] = cats.get(seg.category, 0.0) + seg.duration
    return out


def attribution_by_field(
    segments: Sequence[PathSegment],
) -> dict[str, dict[str, float]]:
    """Per-field category seconds on the path (host gaps under ``"-"``)."""
    return _grouped(
        segments,
        lambda s: field_of(s.label) if s.op_id is not None else "-",
    )


def attribution_by_region(
    segments: Sequence[PathSegment],
) -> dict[str, dict[str, float]]:
    """Per-region (``field.rN``) category seconds on the path."""
    return _grouped(
        segments,
        lambda s: region_of(s.label) if s.op_id is not None else "-",
    )


# -- overlap efficiency -----------------------------------------------------

def overlap_report(dag: RunDag) -> list[dict[str, Any]]:
    """Achieved vs. ideal overlap, per iteration.

    An iteration runs between consecutive ``iteration`` marks (the
    library emits one per ``swap``); a run without marks is one
    iteration.  Within each window, ``compute`` is the summed busy time
    of kernel-kind nodes and ``transfer`` of copy-engine nodes (both
    clipped to the window); the pipeline cannot finish the window
    faster than ``ideal = max(compute, transfer)``, and the overlap it
    *achieved* is ``compute + transfer - wall`` out of an ideal
    ``min(compute, transfer)``.
    """
    if not dag.nodes:
        return []
    bounds = [dag.t0]
    for ts in dag.iteration_marks:
        if bounds[-1] < ts < dag.t_end:
            bounds.append(ts)
    bounds.append(dag.t_end)
    rows: list[dict[str, Any]] = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        if hi <= lo:
            continue
        compute = transfer = 0.0
        for n in dag.nodes:
            clip = min(n.end, hi) - max(n.start, lo)
            if clip <= 0:
                continue
            if n.kind in TRANSFER_KINDS:
                transfer += clip
            else:
                compute += clip
        wall = hi - lo
        ideal = max(compute, transfer)
        ideal_overlap = min(compute, transfer)
        achieved = max(0.0, compute + transfer - wall)
        rows.append({
            "iteration": i,
            "wall_s": wall,
            "compute_s": compute,
            "transfer_s": transfer,
            "ideal_s": ideal,
            "achieved_overlap_s": achieved,
            "ideal_overlap_s": ideal_overlap,
            "efficiency": (achieved / ideal_overlap) if ideal_overlap > 0 else 1.0,
        })
    return rows


# -- what-if replay ---------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """A machine perturbation to replay the recorded schedule under.

    ``link_factor`` scales PCIe bandwidth (transfer durations keep
    their fixed latency: ``dur' = latency + (dur - latency)/factor``,
    matching :meth:`LinkSpec.transfer_time` exactly); ``kernel_factor``
    scales kernel throughput; ``zero_launch`` removes the per-launch
    overhead; ``drop_writebacks`` zeroes eviction write-backs — the
    limit of "enough slots that nothing is ever evicted".
    """

    name: str
    link_factor: float = 1.0
    kernel_factor: float = 1.0
    zero_launch: bool = False
    drop_writebacks: bool = False


#: The default what-if panel printed by ``obs.report --critpath``.
WHATIF_SCENARIOS = (
    Scenario("baseline"),
    Scenario("pcie x2", link_factor=2.0),
    Scenario("pcie x4", link_factor=4.0),
    Scenario("nvlink (x5)", link_factor=5.0),
    Scenario("kernels x2", kernel_factor=2.0),
    Scenario("zero launch latency", zero_launch=True),
    Scenario("unlimited slots", drop_writebacks=True),
)


def _scaled_duration(
    node: DagNode, scenario: Scenario, machine: MachineSpec
) -> float:
    dur = node.duration
    if scenario.drop_writebacks and node.label.startswith("evict:"):
        return 0.0
    if node.kind in TRANSFER_KINDS:
        if scenario.link_factor != 1.0:
            lat = min(machine.link.latency, dur)
            dur = lat + (dur - lat) / scenario.link_factor
        return dur
    if scenario.kernel_factor != 1.0:
        dur = dur / scenario.kernel_factor
    if scenario.zero_launch:
        dur = max(0.0, dur - machine.gpu.kernel_launch_overhead)
    return dur


def replay(
    nodes: Sequence[DagNode],
    scenario: Scenario,
    *,
    machine: MachineSpec = DEFAULT_MACHINE,
) -> tuple[list[DagNode], float]:
    """Re-schedule the DAG under ``scenario``; returns (nodes', makespan).

    The replay keeps the recorded structure fixed — issue order, stream
    assignment, engine FIFO order, host think time (``host_gap``) — and
    recomputes times with the scheduling rule the simulator itself
    uses: ``issue' = max(previous issue', end'(host sync)) + host_gap``
    and ``start' = max(issue', ordering-edge ends')``.  Under the
    identity scenario this reproduces the recorded schedule exactly;
    under a perturbation it predicts what the same program would have
    done, up to schedule decisions (eviction choices, FIFO races) that
    a re-run might make differently.
    """
    ends: dict[int, float] = {}
    prev_issue = 0.0
    out: list[DagNode] = []
    for n in sorted(nodes, key=lambda x: x.op_id):
        host_end = ends.get(n.host_dep, 0.0) if n.host_dep is not None else 0.0
        issue = max(prev_issue, host_end) + n.host_gap
        start = issue
        for dep, _kind in n.deps:
            start = max(start, ends.get(dep, 0.0))
        end = start + _scaled_duration(n, scenario, machine)
        ends[n.op_id] = end
        prev_issue = issue
        out.append(n.shifted(start=start, end=end, issue=issue))
    if not out:
        return [], 0.0
    makespan = max(n.end for n in out) - min(n.start for n in out)
    return out, makespan


def _machine_duration(
    node: DagNode, machine: MachineSpec, perturbed: MachineSpec
) -> float:
    """Duration of one recorded op under ``perturbed``, from first principles.

    Transfers are recomputed exactly the way the runtime computes them —
    ``link.transfer_time(nbytes, direction, pinned=True)`` (peer copies
    price at D2H rate, matching :meth:`MultiGpuRuntime.peer_copy`) — plus
    the *residual* between the recorded duration and what the recording
    machine's formula predicts.  The residual carries everything the
    formula does not see (fault hang time, pageable staging, managed
    migration) unchanged into the replay, so perturbing the link never
    erases a fault injection and the identity replay is exact.

    Kernels rescale each recorded roofline leg (:attr:`DagNode.cost`) by
    the bandwidth/throughput ratio and re-take the max — reproducing
    roofline crossovers a re-simulation would find — then swap the launch
    overhead.  Nodes recorded without cost legs (older manifests, copy
    kernels from bare traces) keep their body time and only swap the
    overhead.  Geometry-efficiency and math-model perturbations are not
    modelled here; legs that change those must fall back to simulation.
    """
    dur = node.duration
    if node.kind in TRANSFER_KINDS:
        direction = "h2d" if node.kind == "h2d" else "d2h"
        base = machine.link.transfer_time(
            node.nbytes, direction=direction, pinned=True
        )
        new = perturbed.link.transfer_time(
            node.nbytes, direction=direction, pinned=True
        )
        return new + max(0.0, dur - base)
    old_oh = machine.gpu.kernel_launch_overhead
    new_oh = perturbed.gpu.kernel_launch_overhead
    if node.cost is None:
        return new_oh + max(0.0, dur - old_oh)
    mem, flop = node.cost
    body = mem * (machine.gpu.mem_bandwidth / perturbed.gpu.mem_bandwidth)
    body = max(body, flop * (machine.gpu.dp_flops / perturbed.gpu.dp_flops))
    residual = max(0.0, dur - old_oh - max(node.cost))
    return new_oh + body + residual


def replay_machine(
    nodes: Sequence[DagNode],
    *,
    machine: MachineSpec,
    perturbed: MachineSpec,
) -> tuple[list[DagNode], float]:
    """Re-schedule a recorded DAG on a different machine; (nodes', makespan).

    The sweep surrogate: :func:`~repro.check.explore.conformance_matrix`
    and replay-strategy autotuning record one DAG per (workload, shape)
    and call this for every candidate machine instead of re-simulating.
    Same scheduling rule as :func:`replay` — recorded issue order, stream
    and engine structure, and host think time are kept; only per-op
    durations (see :func:`_machine_duration`) and the host gaps (scaled
    by the API-call-overhead ratio) change.  ``replay_machine(nodes,
    machine=m, perturbed=m)`` reproduces the recording byte-exactly.
    """
    gap_scale = (
        perturbed.cpu.api_call_overhead / machine.cpu.api_call_overhead
    )
    ends: dict[int, float] = {}
    prev_issue = 0.0
    out: list[DagNode] = []
    for n in sorted(nodes, key=lambda x: x.op_id):
        host_end = ends.get(n.host_dep, 0.0) if n.host_dep is not None else 0.0
        issue = max(prev_issue, host_end) + n.host_gap * gap_scale
        start = issue
        for dep, _kind in n.deps:
            start = max(start, ends.get(dep, 0.0))
        end = start + _machine_duration(n, machine, perturbed)
        ends[n.op_id] = end
        prev_issue = issue
        out.append(n.shifted(start=start, end=end, issue=issue))
    if not out:
        return [], 0.0
    makespan = max(n.end for n in out) - min(n.start for n in out)
    return out, makespan


def _bound_of(nodes: Sequence[DagNode]) -> str:
    """``"transfer"``/``"compute"``/``"host"``: what dominates the path."""
    attr = attribution(critical_path(nodes))
    transfer = sum(attr[c] for c in ("h2d", "d2h", "write-back", "peer"))
    compute = sum(attr[c] for c in ("kernel", "ghost"))
    host = attr["host"]
    top = max(("transfer", transfer), ("compute", compute), ("host", host),
              key=lambda kv: kv[1])
    return top[0]


def whatif(
    dag: RunDag,
    *,
    machine: MachineSpec = DEFAULT_MACHINE,
    scenarios: Sequence[Scenario] = WHATIF_SCENARIOS,
) -> list[dict[str, Any]]:
    """Predicted makespan/speedup per scenario, against the identity replay.

    Speedups are measured against the *replayed* baseline, not the raw
    recorded wall time, so modelling error common to both cancels out.
    """
    _, base = replay(dag.nodes, Scenario("baseline"), machine=machine)
    rows: list[dict[str, Any]] = []
    for sc in scenarios:
        nodes, makespan = replay(dag.nodes, sc, machine=machine)
        rows.append({
            "scenario": sc.name,
            "makespan_s": makespan,
            "speedup": (base / makespan) if makespan > 0 else float("inf"),
            "bound": _bound_of(nodes) if nodes else "-",
        })
    return rows


def flip_point(
    dag: RunDag,
    *,
    machine: MachineSpec = DEFAULT_MACHINE,
    factors: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
) -> float | None:
    """Smallest link-speed factor at which the run stops being transfer-bound.

    Returns ``None`` when the baseline is already compute- or host-bound
    (nothing to flip), or ``inf`` when even the largest swept factor
    leaves it transfer-bound.
    """
    nodes, _ = replay(dag.nodes, Scenario("baseline"), machine=machine)
    if not nodes or _bound_of(nodes) != "transfer":
        return None
    for f in sorted(factors):
        if f <= 1.0:
            continue
        nodes, _ = replay(
            dag.nodes, Scenario(f"x{f:g}", link_factor=f), machine=machine
        )
        if _bound_of(nodes) != "transfer":
            return f
    return float("inf")


# -- summaries --------------------------------------------------------------

def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name).strip("_")


def critpath_summary(
    dag: RunDag, *, machine: MachineSpec = DEFAULT_MACHINE
) -> dict[str, Any]:
    """Everything the critpath analyses produce, as one JSON-able dict.

    This is what the harness embeds under a manifest's ``"critpath"``
    key and what :func:`critpath_metrics` flattens for ``--compare``
    gating.
    """
    segments = critical_path(dag.nodes)
    attr = attribution(segments)
    overlap = overlap_report(dag)
    rows = whatif(dag, machine=machine)
    flip = flip_point(dag, machine=machine)
    return {
        "wall_s": dag.wall,
        "n_ops": len(dag.nodes),
        "path": [
            {
                "start": s.start, "duration": s.duration,
                "category": s.category, "label": s.label, "op": s.op_id,
            }
            for s in segments
        ],
        "attribution": attr,
        "attribution_by_field": attribution_by_field(segments),
        "attribution_by_region": attribution_by_region(segments),
        "overlap": overlap,
        "whatif": rows,
        "flip_link_factor": flip,
    }


def critpath_metrics(summary: dict[str, Any]) -> dict[str, float]:
    """Flat ``critpath.*`` counters for snapshot comparison / CI gating.

    Category seconds and wall time are lower-is-better by the default
    comparison rule; names carrying ``overlap``/``speedup`` fragments
    are higher-is-better (see :mod:`repro.obs.compare`).
    """
    out: dict[str, float] = {"critpath.wall_s": float(summary["wall_s"])}
    for cat, secs in summary["attribution"].items():
        out[f"critpath.path.{_slug(cat)}_s"] = float(secs)
    overlap = summary.get("overlap") or []
    if overlap:
        ideal = sum(r["ideal_overlap_s"] for r in overlap)
        achieved = sum(r["achieved_overlap_s"] for r in overlap)
        out["critpath.overlap_efficiency"] = (
            achieved / ideal if ideal > 0 else 1.0
        )
    for row in summary.get("whatif", ()):
        out[f"critpath.whatif.{_slug(row['scenario'])}.speedup"] = float(
            row["speedup"]
        )
    return out


# -- multi-tenant contention blame ------------------------------------------

#: Blame components, in display order.  Signed seconds; they sum to the
#: multiplexed-minus-solo latency delta by construction.
BLAME_COMPONENTS = (
    "queueing_wait",
    "admission_deferral",
    "quantum_preemption",
    "slot_quota_shrink",
    "shed_slots",
    "barrier_interference",
)


def job_phases(timeline: dict[str, Any]) -> dict[str, float]:
    """Phase decomposition of one job's lifecycle timeline.

    ``timeline`` is :attr:`repro.service.JobResult.timeline` — the
    virtual-clock stamps the service records for every job.  The five
    phases tile the latency exactly: ``queueing`` + ``deferral`` =
    admit - submit (split by recorded wait reasons), ``preemption`` +
    ``own`` = last quantum end - admit (gaps where other tenants held
    the device vs. the job's own quantum time), and ``drain`` = final
    write-back completion - last quantum end.
    """
    wait = timeline.get("wait") or {}
    deferral = sum(v for k, v in wait.items() if k != "queued")
    queueing = (timeline["admitted"] - timeline["submitted"]) - deferral
    own = timeline["own_seconds"]
    preemption = (timeline["last_quantum_end"] - timeline["admitted"]) - own
    drain = timeline["drained"] - timeline["last_quantum_end"]
    return {
        "queueing": queueing,
        "deferral": deferral,
        "preemption": preemption,
        "own": own,
        "drain": drain,
        "latency": timeline["drained"] - timeline["submitted"],
    }


def blame_decomposition(
    mux: dict[str, Any],
    solo: dict[str, Any],
    *,
    solo_shrunk: dict[str, Any] | None = None,
    solo_shed: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Attribute a job's multiplexed-vs-solo slowdown to named causes.

    ``mux`` and ``solo`` are the job's timelines from the shared and the
    dedicated service (:func:`repro.service.run_solo`).  Like
    :func:`critical_path`'s category attribution, the decomposition is
    exact *by construction*: each component is a phase-wise difference,
    so the six components telescope to ``delta = latency_mux -
    latency_solo`` (``residual`` reports the float rounding left over).

    * ``queueing_wait`` — extra time queued behind other admissions;
    * ``admission_deferral`` — extra time deferred by the admission
      controller (memory pressure, SLO backpressure);
    * ``quantum_preemption`` — scheduling gaps between the job's
      quanta while other tenants held the device;
    * ``slot_quota_shrink`` — slower execution from running at a
      shrunk/degraded slot quota (needs ``solo_shrunk``, a solo replay
      at the multiplexed leg's slot count; 0 when not supplied);
    * ``shed_slots`` — further slowdown from slots shed to priority
      tenants mid-run (needs ``solo_shed``; 0 when not supplied);
    * ``barrier_interference`` — everything left inside the job's own
      execution and drain: engine-queue interference from co-running
      jobs' transfers/kernels sharing the FIFOs, plus drain-time
      contention.  Components are signed — sharing can also *help*
      (e.g. a warmer device) and shows up negative.
    """
    pm, ps = job_phases(mux), job_phases(solo)
    own_base = ps["own"]
    shrink = 0.0
    if solo_shrunk is not None:
        shrink = job_phases(solo_shrunk)["own"] - own_base
        own_base += shrink
    shed = 0.0
    if solo_shed is not None:
        shed = job_phases(solo_shed)["own"] - own_base
        own_base += shed
    components = {
        "queueing_wait": pm["queueing"] - ps["queueing"],
        "admission_deferral": pm["deferral"] - ps["deferral"],
        "quantum_preemption": pm["preemption"] - ps["preemption"],
        "slot_quota_shrink": shrink,
        "shed_slots": shed,
        "barrier_interference": (
            (pm["own"] - own_base) + (pm["drain"] - ps["drain"])
        ),
    }
    delta = pm["latency"] - ps["latency"]
    residual = delta - sum(components[c] for c in BLAME_COMPONENTS)
    return {
        "delta": delta,
        "latency": pm["latency"],
        "solo_latency": ps["latency"],
        "components": components,
        "residual": residual,
    }


def blame_summary(rows: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate per-job blame rows: component totals and the worst residual.

    Each row is a :func:`blame_decomposition` result (optionally carrying
    ``job``/``tenant`` labels); the totals answer "where did the fleet's
    slowdown go" the way the critical path answers it for one run.
    """
    rows = list(rows)
    totals = {c: 0.0 for c in BLAME_COMPONENTS}
    delta = 0.0
    max_residual = 0.0
    for row in rows:
        for c in BLAME_COMPONENTS:
            totals[c] += row["components"][c]
        delta += row["delta"]
        max_residual = max(max_residual, abs(row["residual"]))
    return {
        "jobs": len(rows),
        "delta": delta,
        "components": totals,
        "max_residual": max_residual,
    }
