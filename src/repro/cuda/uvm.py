"""Unified (managed) memory, Kepler-era semantics.

``cudaMallocManaged`` gives one pointer valid on host and device
(§II-B).  On the paper's K40m (CUDA 6-8, no hardware page faulting) the
driver migrates *entire* touched allocations at kernel launch, at a
fraction of pinned bandwidth, and migrates them back when the host next
touches them — which is why the "unified" bars in Fig. 1 are the slowest
of every execution model.

A :class:`ManagedBuffer` owns a single numpy array (functional mode) —
one pointer, as advertised — and a ``location`` flag; the runtime turns
location changes into copy-engine time.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..errors import CudaInvalidValueError, TimingModeError
from ..sim.hostmem import _normalize_shape

HOST = "host"
DEVICE = "device"


class ManagedBuffer:
    """A ``cudaMallocManaged`` allocation."""

    __slots__ = ("shape", "dtype", "functional", "nbytes", "label", "location",
                 "_array", "_freed")

    def __init__(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        functional: bool = True,
        fill: float | None = None,
        label: str = "",
    ) -> None:
        self.shape = _normalize_shape(shape)
        self.dtype = np.dtype(dtype)
        self.functional = bool(functional)
        self.label = label
        # cached: read on every migration-time estimate
        self.nbytes = self.dtype.itemsize * math.prod(self.shape)
        self.location = HOST
        self._freed = False
        if self.functional:
            self._array = np.zeros(self.shape, dtype=self.dtype)
            if fill is not None:
                self._array.fill(fill)
        else:
            self._array = None

    @property
    def freed(self) -> bool:
        return self._freed

    @property
    def array(self) -> np.ndarray:
        """The single shared array. Timing of host/device access is handled
        by the runtime's ``managed_host_access``/kernel-launch hooks."""
        if self._freed:
            raise CudaInvalidValueError("managed buffer used after free")
        if self._array is None:
            raise TimingModeError(
                'managed buffer has no backing array (timing-only run, '
                'mode="timing"); re-run with mode="functional" for data access'
            )
        return self._array

    def _mark_freed(self) -> None:
        self._freed = True
        self._array = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManagedBuffer({self.label or '?'}, shape={self.shape}, at={self.location})"
