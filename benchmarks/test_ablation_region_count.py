"""Ablation A1: region-count sweep (the paper fixed 16 as the best)."""

from repro.bench import figures


def test_ablation_region_count(run_once, results_dir):
    table = run_once(figures.ablation_region_count, steps=1)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a1.json")

    measured = dict(zip(table.column("n_regions"), table.column("measured_s")))
    # pipelining pays off on a transfer-dominated run: a moderate region
    # count beats both extremes
    assert min(measured, key=measured.get) not in (1,)
    assert measured[16] < measured[1]
    # far too many regions reintroduce overhead
    assert measured[64] > measured[16] * 0.9
