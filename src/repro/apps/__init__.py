"""Worked applications on top of the TiDA-acc public API.

These are the "downstream user" programs: complete solvers written only
against :class:`~repro.core.library.TidaAcc`, demonstrating that the
reproduction's API is sufficient for real numerical work (the paper's
motivating PDE context, §I).

* :mod:`~repro.apps.cg` — a tiled conjugate-gradient Poisson solver:
  stencil matvec with per-step ghost exchange, device reductions for the
  inner products, three vector-update kernels — all pipelined over
  regions.
"""

from .cg import TiledCG, CgResult

__all__ = ["TiledCG", "CgResult"]
