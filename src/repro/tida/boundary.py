"""Domain boundary conditions.

The ghost cells of regions that touch the domain edge are filled by a
boundary condition rather than by a neighbour exchange:

* :class:`Dirichlet` — fixed value;
* :class:`Neumann` — zero-flux: ghost planes copy the nearest interior
  plane (this is the "update data boundaries" the paper's heat solver
  performs every time step, which is why boundary kernels appear in the
  per-step kernel counts of §II-C);
* :class:`Periodic` — ghosts wrap around the domain (handled by the
  exchange itself; the BC object only marks the intent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TidaError
from .box import Box
from .region import Region


@dataclass(frozen=True)
class BoundaryCondition:
    """Base class; concrete BCs below."""

    @property
    def is_periodic(self) -> bool:
        return False


@dataclass(frozen=True)
class Dirichlet(BoundaryCondition):
    value: float = 0.0

    def fill_face(self, ghost_view: np.ndarray, interior_plane: np.ndarray) -> None:
        ghost_view[...] = self.value


@dataclass(frozen=True)
class Neumann(BoundaryCondition):
    def fill_face(self, ghost_view: np.ndarray, interior_plane: np.ndarray) -> None:
        ghost_view[...] = interior_plane


@dataclass(frozen=True)
class Periodic(BoundaryCondition):
    @property
    def is_periodic(self) -> bool:
        return True

    def fill_face(self, ghost_view: np.ndarray, interior_plane: np.ndarray) -> None:  # pragma: no cover
        raise TidaError("periodic ghosts are filled by the exchange, not by a face fill")


def domain_faces(region: Region, domain: Box) -> list[tuple[int, int, Box, Box]]:
    """Ghost slabs of ``region`` that lie outside ``domain``.

    Yields ``(axis, side, ghost_box, source_box)`` where ``side`` is -1
    (low face) or +1 (high face), ``ghost_box`` is the slab of ghost cells
    to fill and ``source_box`` is the adjacent interior plane (the data a
    Neumann fill copies), both in global coordinates.
    """
    faces: list[tuple[int, int, Box, Box]] = []
    g = region.ghost
    for axis in range(region.ndim):
        if g[axis] == 0:
            continue
        if region.box.lo[axis] == domain.lo[axis]:
            lo = list(region.grown.lo)
            hi = list(region.grown.hi)
            hi[axis] = region.box.lo[axis]
            ghost_box = Box(tuple(lo), tuple(hi))
            src_lo = list(lo)
            src_hi = list(hi)
            src_lo[axis] = region.box.lo[axis]
            src_hi[axis] = region.box.lo[axis] + 1
            faces.append((axis, -1, ghost_box, Box(tuple(src_lo), tuple(src_hi))))
        if region.box.hi[axis] == domain.hi[axis]:
            lo = list(region.grown.lo)
            hi = list(region.grown.hi)
            lo[axis] = region.box.hi[axis]
            ghost_box = Box(tuple(lo), tuple(hi))
            src_lo = list(lo)
            src_hi = list(hi)
            src_lo[axis] = region.box.hi[axis] - 1
            src_hi[axis] = region.box.hi[axis]
            faces.append((axis, +1, ghost_box, Box(tuple(src_lo), tuple(src_hi))))
    return faces
