"""Happens-before hazard detection for the simulated CUDA runtime.

The paper's contribution is a *schedule* — one stream per device slot so
transfers overlap compute — and the repo layers three interacting
schedulers on top of it (associative eviction, lookahead prefetch,
fault-retry re-issue).  ``repro.check`` verifies the orderings those
schedulers rely on, independently of any one policy:

* :class:`~repro.check.hazards.HazardChecker` records every device-buffer
  access (async copies, kernel launches with read/write sets, eviction
  write-backs, ghost-exchange kernels, peer copies) as a vector-clock
  event and flags RAW/WAR/WAW pairs on the same buffer that are not
  ordered by happens-before — distinguishing pairs ordered only by
  engine-FIFO luck (``"warning"``) from genuinely racy ones
  (``"error"``);
* :mod:`repro.check.explore` perturbs engine latencies (machine-spec
  numbers) and tile-visit order under a seed and asserts byte-identical
  results plus hazard-freedom across eviction-policy x prefetch-depth x
  fault-plan matrices.

Enable per runtime with ``CudaRuntime(check="strict")`` (or
``"observe"``), globally with :func:`set_default_mode` /
``REPRO_CHECK=strict``, or for a whole benchmark run with
``python -m repro.bench.harness --check``.
"""

from .dag import DagNode, dag_from_json, dag_to_json
from .hazards import (
    Hazard,
    HazardChecker,
    default_mode,
    resolve_checker,
    resolve_mode,
    set_default_mode,
)
from .vclock import VectorClock

__all__ = [
    "DagNode",
    "Hazard",
    "HazardChecker",
    "VectorClock",
    "dag_from_json",
    "dag_to_json",
    "default_mode",
    "resolve_checker",
    "resolve_mode",
    "set_default_mode",
]
