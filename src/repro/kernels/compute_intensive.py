"""NVIDIA's overlap benchmark kernel (§VI-B): the compute-intensive kernel.

Per time step each cell runs, ``kernel_iteration`` times::

    s = sin(data[i]); c = cos(data[i]); data[i] += sqrt(s*s + c*c)

(sqrt(sin²+cos²) == 1, so the update adds ~1.0 per inner iteration — a
deliberately arithmetic-heavy no-op).  The paper added the inner loop to
re-balance NVIDIA's original kernel (tuned for an older GPU) so that
computation dominates transfer time on the K40m.

Cost metadata: one read + one write per cell (16 B) and, per inner
iteration, one sin + one cos + one sqrt (costed via the active
:class:`~repro.config.MathModel` — the Fig. 6 comparison) plus ~4 plain
flops (multiplies/add/index).
"""

from __future__ import annotations

import numpy as np

from ..cuda.kernel import KernelSpec
from ..errors import CudaInvalidValueError

#: The paper adjusted the inner-loop count "on our target device" without
#: reporting the value.  §VI-C needs per-region *compute* to cover a full
#: per-region D2H + H2D round trip, so that two streams suffice for total
#: overlap (Fig. 7): on the simulated K40m a 64 MiB region round-trips in
#: ~13.1 ms, and 48 inner iterations put the PGI-math kernel at ~14.4 ms.
DEFAULT_KERNEL_ITERATION = 48


def _ci_body(
    data: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
) -> None:
    view = data[tuple(slice(l, h) for l, h in zip(lo, hi))]
    for _ in range(int(kernel_iteration)):
        s = np.sin(view)
        c = np.cos(view)
        view += np.sqrt(s * s + c * c)


def compute_intensive_kernel(kernel_iteration: int = DEFAULT_KERNEL_ITERATION) -> KernelSpec:
    """The sin/cos benchmark kernel with a chosen inner-loop count."""
    if kernel_iteration < 1:
        raise CudaInvalidValueError(
            f"kernel_iteration must be >= 1, got {kernel_iteration}"
        )
    it = float(kernel_iteration)
    return KernelSpec(
        name=f"compute-intensive(it={kernel_iteration})",
        body=_ci_body,
        bytes_per_cell=16.0,
        flops_per_cell=4.0 * it,
        sin_per_cell=it,
        cos_per_cell=it,
        sqrt_per_cell=it,
        arg_access=("rw",),  # in-place update
        footprint=(None,),   # pointwise: no ghost cells needed
        meta={"kernel_iteration": kernel_iteration},
    )


def compute_intensive_reference_step(
    data: np.ndarray, kernel_iteration: int = DEFAULT_KERNEL_ITERATION
) -> np.ndarray:
    """Reference step over a whole array (no ghosts; the kernel is pointwise)."""
    out = data.copy()
    _ci_body(out, (0,) * data.ndim, out.shape, kernel_iteration=kernel_iteration)
    return out
