"""tileArray: allocation, partitioning, and host-side ghost exchange (§IV-A).

``TileArray`` allocates one buffer per region (physically separated, as
TiDA requires), partitions the domain, and performs the CPU side of
ghost-cell updates.  In TiDA-acc mode the allocations are CUDA pinned
host memory (``cudaMallocHost``), which §II-C found necessary both for
transfer bandwidth and for stream overlap.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from ..cuda.runtime import CudaRuntime
from ..errors import TidaError
from ..sim.hostmem import HostBuffer
from .boundary import BoundaryCondition, domain_faces
from .box import Box
from .decomposition import Decomposition
from .region import Region
from .tile import Tile


class TileArray:
    """A domain-decomposed array: one allocation per region, plus ghosts.

    Parameters
    ----------
    domain:
        The global index box (or a plain shape tuple).
    region_shape / n_regions:
        Either an explicit region shape (grid decomposition) or a region
        count for slab decomposition along ``axis`` (the paper's setup).
    ghost:
        Ghost width (int or per-axis tuple).
    runtime:
        When given, allocations go through the simulated CUDA runtime —
        pinned (``cudaMallocHost``) if ``pinned=True``, pageable otherwise
        — and host-side ghost exchanges are charged to the virtual clock.
    """

    def __init__(
        self,
        domain: Box | tuple[int, ...],
        *,
        region_shape: tuple[int, ...] | None = None,
        n_regions: int | None = None,
        axis: int = 0,
        ghost: int | tuple[int, ...] = 0,
        dtype: Any = np.float64,
        runtime: CudaRuntime | None = None,
        pinned: bool = True,
        fill: float | None = None,
        label: str = "",
    ) -> None:
        if not isinstance(domain, Box):
            domain = Box.from_shape(tuple(domain))
        if (region_shape is None) == (n_regions is None):
            raise TidaError("give exactly one of region_shape or n_regions")
        if region_shape is not None:
            self.decomposition = Decomposition(domain=domain, region_shape=region_shape)
        else:
            self.decomposition = Decomposition.by_count(domain, n_regions, axis=axis)
        self.domain = domain
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.pinned = bool(pinned)
        self.label = label or "tilearray"
        if isinstance(ghost, int):
            ghost = (ghost,) * domain.ndim
        self.ghost = tuple(int(g) for g in ghost)

        self.regions: list[Region] = []
        for rid, box in enumerate(self.decomposition.boxes):
            region = Region(rid, box, self.ghost, data=None, label=f"{self.label}.r{rid}")
            data = self._allocate(region.local_shape, fill, region.label)
            region.data = data
            self.regions.append(region)

    def _allocate(self, shape: tuple[int, ...], fill: float | None, label: str) -> HostBuffer:
        if self.runtime is None:
            return HostBuffer(shape, self.dtype, pinned=self.pinned, fill=fill, label=label)
        if self.pinned:
            return self.runtime.malloc_pinned(shape, self.dtype, fill=fill, label=label)
        return self.runtime.malloc_pageable(shape, self.dtype, fill=fill, label=label)

    # -- basic queries -----------------------------------------------------

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    @property
    def functional(self) -> bool:
        return self.regions[0].data.functional

    def region(self, rid: int) -> Region:
        if not 0 <= rid < self.n_regions:
            raise TidaError(f"region id {rid} out of range [0, {self.n_regions})")
        return self.regions[rid]

    def compatible_with(self, other: "TileArray") -> bool:
        """Same domain, decomposition and ghost (required to iterate together)."""
        return (
            self.domain == other.domain
            and self.decomposition.boxes == other.decomposition.boxes
            and self.ghost == other.ghost
        )

    # -- tiles -----------------------------------------------------------------

    def tiles(self, tile_shape: tuple[int, ...] | None = None) -> list[Tile]:
        """All tiles, region-major.

        Without ``tile_shape`` there is one tile per region — the
        recommended GPU configuration (§V: multiple tiles per region mean
        multiple kernel launches).
        """
        out: list[Tile] = []
        for region in self.regions:
            if tile_shape is None:
                out.append(Tile(region, region.box, self))
                continue
            sub = Decomposition(domain=region.box, region_shape=tile_shape)
            out.extend(Tile(region, b, self) for b in sub.boxes)
        return out

    # -- data movement between arrays -------------------------------------------

    def swap_data(self, other: "TileArray") -> None:
        """Exchange backing buffers with ``other`` (the old/new swap of a
        time-stepping loop). Host-side only; TiDA-acc's TileAcc has its own
        swap that also exchanges device bindings."""
        if not self.compatible_with(other):
            raise TidaError("cannot swap incompatible tile arrays")
        for a, b in zip(self.regions, other.regions):
            a.data, b.data = b.data, a.data

    # -- functional whole-array helpers (tests, examples) -------------------------

    def to_global(self) -> np.ndarray:
        """Gather all region interiors into one global array (functional mode)."""
        out = np.empty(self.domain.shape, dtype=self.dtype)
        for region in self.regions:
            out[region.box.slices(origin=self.domain.lo)] = region.interior
        return out

    def from_global(self, arr: np.ndarray) -> None:
        """Scatter a global array into the region interiors (functional mode)."""
        arr = np.asarray(arr, dtype=self.dtype)
        if tuple(arr.shape) != self.domain.shape:
            raise TidaError(
                f"global array shape {arr.shape} != domain shape {self.domain.shape}"
            )
        for region in self.regions:
            region.interior[...] = arr[region.box.slices(origin=self.domain.lo)]

    def set_all(self, value: float) -> None:
        for region in self.regions:
            region.array.fill(value)

    def apply(self, fn: Callable[[np.ndarray, Region], None]) -> None:
        """Run ``fn(interior_view, region)`` on every region (functional mode)."""
        for region in self.regions:
            fn(region.interior, region)

    # -- ghost exchange (host side) -------------------------------------------------

    def _exchange_pairs(self, region: Region) -> Iterable[tuple[Region, Box, Box]]:
        """(source region, source global box, destination global box) triples
        that fill ``region``'s ghost cells from neighbour interiors,
        including periodic images when the BC is periodic."""
        for nid in self.decomposition.covering(region.grown):
            if nid == region.rid:
                continue
            src = self.regions[nid]
            overlap = region.grown.intersect(src.box)
            if not overlap.is_empty:
                yield src, overlap, overlap

    def _periodic_pairs(self, region: Region) -> Iterable[tuple[Region, Box, Box]]:
        extents = self.domain.shape
        ndim = self.domain.ndim
        shifts: list[tuple[int, ...]] = []

        def build(axis: int, current: tuple[int, ...]) -> None:
            if axis == ndim:
                if any(s != 0 for s in current):
                    shifts.append(current)
                return
            for s in (-extents[axis], 0, extents[axis]):
                build(axis + 1, current + (s,))

        build(0, ())
        for shift in shifts:
            probe = region.grown.shift(shift)
            for nid in self.decomposition.covering(probe):
                src = self.regions[nid]
                overlap = probe.intersect(src.box)
                if not overlap.is_empty:
                    # data at overlap (in src's frame) lands at overlap
                    # shifted back into region's ghost frame
                    yield src, overlap, overlap.shift(tuple(-s for s in shift))

    def exchange_pairs(
        self, region: Region, *, periodic: bool = False
    ) -> list[tuple[Region, Box, Box]]:
        """All (source, source box, destination box) triples filling
        ``region``'s ghosts, with periodic images when requested."""
        pairs = list(self._exchange_pairs(region))
        if periodic:
            pairs.extend(self._periodic_pairs(region))
        return pairs

    def fill_region_ghosts(self, region: Region, bc: BoundaryCondition | None = None) -> int:
        """Fill one region's ghosts from neighbour host data; returns bytes
        copied (the caller charges host time).  Used by both the whole-array
        host path and the hybrid updater's per-region fallback."""
        itemsize = self.dtype.itemsize
        functional = self.functional
        bytes_copied = 0
        periodic = bc is not None and bc.is_periodic
        for src, src_box, dst_box in self.exchange_pairs(region, periodic=periodic):
            bytes_copied += src_box.size * itemsize
            if functional:
                region.view(dst_box)[...] = src.view(src_box)
        if bc is not None and not bc.is_periodic:
            for _axis, _side, ghost_box, src_box in domain_faces(region, self.domain):
                bytes_copied += ghost_box.size * itemsize
                if functional:
                    bc.fill_face(region.view(ghost_box), region.view(src_box))
        return bytes_copied

    def fill_boundary(self, bc: BoundaryCondition | None = None) -> None:
        """Update every region's ghost cells on the host (plain TiDA path).

        Internal faces copy from neighbour interiors; domain faces apply
        ``bc`` (periodic BCs wrap through shifted neighbour images).
        Charged to the virtual host clock when a runtime is attached.
        """
        if all(g == 0 for g in self.ghost):
            return
        bytes_copied = 0
        for region in self.regions:
            bytes_copied += self.fill_region_ghosts(region, bc)
        if self.runtime is not None and bytes_copied:
            # read + write traffic through the host memory system
            duration = 2 * bytes_copied / self.runtime.machine.cpu.mem_bandwidth
            self.runtime.host_compute(f"fill_boundary:{self.label}", duration, nbytes=bytes_copied)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TileArray({self.label}, domain={self.domain.shape}, "
            f"regions={self.n_regions}, ghost={self.ghost})"
        )
