"""The declarative Program builder: construction and validation."""

import pytest

from repro.errors import PlanError
from repro.kernels import heat_kernel, wave_kernel
from repro.kernels.reductions import norm2_reduction
from repro.plan import Loop, Program, Reduce, Scalar, Step, Swap, ref


def heat_program(steps=3):
    prog = Program((16, 16))
    with prog.sweep(steps):
        prog.step(heat_kernel(2), ("u_new", "u_old"), params={"coef": 0.1})
        prog.swap("u_old", "u_new")
    return prog


class TestBuilders:
    def test_statement_shape(self):
        prog = heat_program()
        (loop,) = prog.statements
        assert isinstance(loop, Loop) and loop.count == 3
        step, swap = loop.body
        assert isinstance(step, Step) and step.fields == ("u_new", "u_old")
        assert isinstance(swap, Swap) and (swap.a, swap.b) == ("u_old", "u_new")

    def test_field_names_first_appearance_order(self):
        prog = Program((8, 8))
        prog.step(wave_kernel(2), ("u_next", "u", "u_prev"))
        prog.swap("u_prev", "u")
        assert prog.field_names() == ("u_next", "u", "u_prev")

    def test_walk_flattens_nested_loops(self):
        prog = Program((8,))
        with prog.sweep(2):
            with prog.sweep(3):
                prog.step(heat_kernel(1), ("b", "a"))
        kinds = [type(s).__name__ for s in prog.walk()]
        assert kinds == ["Loop", "Loop", "Step"]

    def test_reduce_and_scalar_statements(self):
        prog = Program((8, 8))
        prog.reduce(norm2_reduction(), "r", store="rr")
        prog.scalar("alpha", lambda env: env["rr"] * 2, timing=1.5)
        red, sca = prog.statements
        assert isinstance(red, Reduce) and red.store == "rr"
        assert isinstance(sca, Scalar) and sca.timing == 1.5

    def test_ref_param_is_a_scalar_ref(self):
        prog = Program((8, 8))
        prog.step(heat_kernel(2), ("b", "a"), params={"coef": ref("alpha")})
        (step,) = prog.statements
        assert step.params["coef"].name == "alpha"

    def test_chaining_returns_program(self):
        prog = Program((8, 8))
        assert prog.step(heat_kernel(2), ("b", "a")).swap("a", "b") is prog


class TestValidation:
    def test_bad_domain(self):
        with pytest.raises(PlanError, match="positive extents"):
            Program((8, 0))
        with pytest.raises(PlanError, match="positive extents"):
            Program(())

    def test_step_requires_kernelspec(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="KernelSpec"):
            prog.step(lambda: None, ("a",))

    def test_step_field_count_must_cover_declarations(self):
        # heat declares arg_access/footprint for 2 args; 1 field is short
        prog = Program((8, 8))
        with pytest.raises(PlanError, match="declares"):
            prog.step(heat_kernel(2), ("u_new",))

    def test_step_rejects_empty_fields(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="field names"):
            prog.step(heat_kernel(1), ())

    def test_swap_rejects_same_name(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="distinct"):
            prog.swap("a", "a")

    def test_reduce_rejects_empty_store(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="store"):
            prog.reduce(norm2_reduction(), "r", store="")

    def test_scalar_rejects_non_callable(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="callable"):
            prog.scalar("alpha", 3.0)

    def test_sweep_rejects_negative_count(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match=">= 0"):
            with prog.sweep(-1):
                pass

    def test_statements_inside_open_sweep(self):
        prog = Program((8,))
        with pytest.raises(PlanError, match="open sweep"):
            with prog.sweep(2):
                _ = prog.statements

    def test_validate_rejects_swap_of_untouched_fields(self):
        prog = Program((8, 8))
        prog.step(heat_kernel(2), ("u_new", "u_old"))
        prog.swap("ghost_town", "u_new")
        with pytest.raises(PlanError, match="ghost_town"):
            prog.validate()

    def test_validate_accepts_well_formed_program(self):
        heat_program().validate()
