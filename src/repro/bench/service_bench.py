"""Service gate: ``python -m repro.bench.service_bench``.

The acceptance spine of the multi-tenant service layer (see
:mod:`repro.service`): a seeded 8-tenant contention mix — one priority
tenant at weight 2.0 plus seven best-effort tenants, Poisson bursts from
the deterministic load generator — is replayed through four legs:

* **uncontended** — only the priority tenant's arrivals, at the same
  virtual times; its p95 latency is the QoS baseline;
* **contention** — the full mix under the weighted-fair scheduler; this
  leg yields aggregate device utilization and the priority tenant's
  contended p95;
* **serialized** — the same arrivals with ``scheduler="serial"`` (one
  job at a time, runtime reset between jobs): the utilization
  denominator the overlap claim is measured against;
* **dedup** — two variable-coefficient jobs sharing one proven
  read-only coefficient table; the second must borrow the first's
  device-resident copy instead of re-transferring it.

Conformance: every job in the contention and serialized legs must be
**byte-identical** to its solo run on a dedicated service, with zero
racy hazards anywhere, and re-running the contention leg under the same
seed must produce a byte-identical session log.

Exit codes: 1 when any conformance leg diverges (digest mismatch, racy
hazard, or session drift), 2 when a floor is missed: utilization
speedup below ``SPEEDUP_FLOOR`` (the issue's 1.5x bar), priority p95
slowdown above ``P95_SLOWDOWN_CEILING`` (the 1.25x bar), or no dedup
savings.

Gated counters are *clamped* so the committed baseline never moves on
faster machines: higher-is-better counters report
``min(measured, ceiling)`` with ceilings below a healthy run, and the
lower-is-better slowdown reports ``max(measured, floor)`` with the
floor above a healthy run.  A real regression pulls the counter past
its clamp and trips both the ``--compare`` gate and the hard floor.
Raw values live under the manifest's ungated ``"service"`` key.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..service import LoadGenerator, Service, TrafficPattern, run_solo

#: Clamp bounds for the gated counters — chosen past what the committed
#: configuration measures (speedup ~2.0, utilization ~0.71, slowdown
#: ~1.01, ~25 kB avoided), so the baseline sits exactly at the clamp.
#: Do not change without regenerating BENCH_service.json.
UTILIZATION_SPEEDUP_CEILING = 1.8
AGGREGATE_UTILIZATION_CEILING = 0.6
DEDUP_BYTES_AVOIDED_CEILING = 20_000.0
PRIORITY_P95_SLOWDOWN_FLOOR = 1.15

#: Hard acceptance floors (exit 2), from the issue's acceptance criteria.
SPEEDUP_FLOOR = 1.5
P95_SLOWDOWN_CEILING = 1.25

#: The committed contention mix: 8 tenants, priority t0 at double
#: weight, bursty open-loop arrivals, one transfer-heavy and one
#: compute-heavy workload so overlap across jobs has something to hide.
SEED = 42
N_JOBS = 16
TOTAL_SLOTS = 144
PRIORITY_TENANT = "t0"
TENANTS = tuple(f"t{i}" for i in range(8))
WORKLOAD_KWARGS: dict[str, dict[str, Any]] = {
    "heat": {"shape": (96, 48, 48), "steps": 1},
    "compute": {"shape": (16, 8, 8), "steps": 2, "kernel_iteration": 8192},
}
PATTERN = TrafficPattern(mean_gap=2e-5, burst_size=2)

#: Solo-differential coverage under ``--quick``: every priority-tenant
#: job plus this many best-effort jobs (full mode checks all of them).
QUICK_SOLO_BEST_EFFORT = 2


def arrivals():
    gen = LoadGenerator(
        SEED, TENANTS, workloads=tuple(WORKLOAD_KWARGS),
        pattern=PATTERN, workload_kwargs=WORKLOAD_KWARGS,
    )
    return gen.arrivals(N_JOBS)


def _service(scheduler: str) -> Service:
    svc = Service(total_slots=TOTAL_SLOTS, scheduler=scheduler)
    svc.add_tenant(PRIORITY_TENANT, 2.0, priority=True)
    for t in TENANTS[1:]:
        svc.add_tenant(t, 1.0)
    return svc


def _submit_all(svc: Service, arr, *, only_tenant: str | None = None):
    """Submit arrivals; returns ``{job_id: arrival}`` in submission order."""
    jobs = {}
    for a in arr:
        if only_tenant is not None and a.tenant != only_tenant:
            continue
        jid = svc.submit(a.tenant, workload=a.workload, at=a.t,
                         workload_kwargs=dict(a.kwargs, seed=a.seed))
        jobs[jid] = a
    return jobs


def _run_leg(scheduler: str, arr, *, only_tenant: str | None = None):
    svc = _service(scheduler)
    jobs = _submit_all(svc, arr, only_tenant=only_tenant)
    report = svc.run()
    session = svc.session.to_bytes()
    svc.close()
    return report, jobs, session


def _p95(latencies) -> float:
    return float(np.percentile(latencies, 95))


def differential_check(report, jobs, leg: str, *, quick: bool) -> tuple[list[str], int]:
    """Every selected job must be byte-identical to its solo run."""
    failures: list[str] = []
    selected = []
    be_taken = 0
    for jid, a in jobs.items():
        if quick and a.tenant != PRIORITY_TENANT:
            if be_taken >= QUICK_SOLO_BEST_EFFORT:
                continue
            be_taken += 1
        selected.append((jid, a))
    for jid, a in selected:
        solo = run_solo(a.tenant, workload=a.workload,
                        workload_kwargs=dict(a.kwargs, seed=a.seed),
                        total_slots=TOTAL_SLOTS)
        if report.jobs[jid].digests != solo.digests:
            failures.append(f"{leg}/{jid}: digests diverge from solo run")
    return failures, len(selected)


def measure_dedup() -> dict[str, Any]:
    """Two coeff-heat jobs sharing one read-only coefficient table."""
    svc = Service(total_slots=32)
    svc.add_tenant("a")
    svc.add_tenant("b")
    kw = {"shape": (32, 16, 16), "steps": 2, "seed": 0}
    # the borrower arrives a beat later: datasets register after the
    # donor's first quantum, so a simultaneous arrival would plan its own
    # transfers before the donor's table is published
    for tenant, at in (("a", 0.0), ("b", 2e-4)):
        svc.submit(tenant, workload="coeff-heat", workload_kwargs=kw,
                   at=at, n_regions=8)
    report = svc.run()
    counters = svc.runtime.metrics.snapshot()["counters"]
    shared = sorted(
        f for r in report.jobs.values() for f in r.shared_fields
    )
    digests = [r.digests for r in report.jobs.values()]
    svc.close()
    return {
        "hits": float(counters.get("service.dedup_hits", 0)),
        "bytes_avoided": float(counters.get("service.dedup_bytes_avoided", 0)),
        "shared_fields": shared,
        "byte_identical": digests[0] == digests[1],
        "racy": report.racy_hazards,
    }


def run(out: Path, *, quick: bool = False) -> int:
    arr = arrivals()

    solo_rep, _solo_jobs, _ = _run_leg("fair", arr, only_tenant=PRIORITY_TENANT)
    fair_rep, fair_jobs, fair_session = _run_leg("fair", arr)
    serial_rep, serial_jobs, _ = _run_leg("serial", arr)

    failures: list[str] = []
    for leg, rep in (("uncontended", solo_rep), ("contention", fair_rep),
                     ("serialized", serial_rep)):
        if rep.racy_hazards:
            failures.append(f"{leg}: {rep.racy_hazards} racy hazards")

    # the serialized leg runs the same jobs, so it must agree bit-for-bit
    # with the contention leg before either is compared to solo runs
    serial_by_arrival = {id(a): jid for jid, a in serial_jobs.items()}
    for jid, a in fair_jobs.items():
        sjid = serial_by_arrival[id(a)]
        if fair_rep.jobs[jid].digests != serial_rep.jobs[sjid].digests:
            failures.append(f"{jid}: contention and serialized digests diverge")

    diff_failures, n_checked = differential_check(
        fair_rep, fair_jobs, "contention", quick=quick)
    failures.extend(diff_failures)

    # same seed, same arrivals => byte-identical session log
    rerun_rep, _rerun_jobs, rerun_session = _run_leg("fair", arr)
    if rerun_session != fair_session:
        failures.append("determinism: same-seed session logs differ")
    if rerun_rep.racy_hazards:
        failures.append(f"determinism: {rerun_rep.racy_hazards} racy hazards")

    dedup = measure_dedup()
    if not dedup["byte_identical"]:
        failures.append("dedup: borrower diverged from donor's results")
    if dedup["racy"]:
        failures.append(f"dedup: {dedup['racy']} racy hazards")

    if failures:
        for f in failures:
            print(f"FAIL conformance: {f}", file=sys.stderr)
        return 1

    speedup = fair_rep.utilization / serial_rep.utilization
    p95_un = _p95(solo_rep.latencies(PRIORITY_TENANT))
    p95_con = _p95(fair_rep.latencies(PRIORITY_TENANT))
    slowdown = p95_con / p95_un

    print(f"conformance: {n_checked}/{len(fair_jobs)} jobs byte-identical to "
          f"solo runs, serialized leg bit-equal, zero racy hazards, "
          f"same-seed session byte-identical")
    print(f"utilization: contention {fair_rep.utilization:.3f} vs serialized "
          f"{serial_rep.utilization:.3f}  (speedup {speedup:.3f}x, floor "
          f"{SPEEDUP_FLOOR}x)")
    print(f"priority p95: contended {p95_con*1e3:.3f} ms vs uncontended "
          f"{p95_un*1e3:.3f} ms  (slowdown {slowdown:.3f}x, ceiling "
          f"{P95_SLOWDOWN_CEILING}x)")
    print(f"latency: overall p50 {np.percentile(fair_rep.latencies(), 50)*1e3:.3f} ms  "
          f"p95 {_p95(fair_rep.latencies())*1e3:.3f} ms over {len(fair_jobs)} jobs")
    print(f"dedup: {dedup['hits']:.0f} hits, {dedup['bytes_avoided']:.0f} bytes "
          f"avoided (shared: {', '.join(dedup['shared_fields']) or '-'})")

    bench = MetricsRegistry()
    gated = {
        "bench.service.utilization_speedup":
            min(speedup, UTILIZATION_SPEEDUP_CEILING),
        "bench.service.aggregate_utilization":
            min(fair_rep.utilization, AGGREGATE_UTILIZATION_CEILING),
        "bench.service.dedup_bytes_avoided":
            min(dedup["bytes_avoided"], DEDUP_BYTES_AVOIDED_CEILING),
        "bench.service.priority_p95_slowdown":
            max(slowdown, PRIORITY_P95_SLOWDOWN_FLOOR),
    }
    for name, value in gated.items():
        bench.counter(name).inc(value)

    raw = {
        "config": {
            "seed": SEED, "n_jobs": N_JOBS, "total_slots": TOTAL_SLOTS,
            "tenants": list(TENANTS), "priority_tenant": PRIORITY_TENANT,
            "workload_kwargs": WORKLOAD_KWARGS,
            "pattern": {"mean_gap": PATTERN.mean_gap,
                        "burst_size": PATTERN.burst_size},
        },
        "utilization": {"contention": fair_rep.utilization,
                        "serialized": serial_rep.utilization,
                        "uncontended": solo_rep.utilization,
                        "speedup": speedup},
        "latency_ms": {
            "priority_p95_uncontended": p95_un * 1e3,
            "priority_p95_contended": p95_con * 1e3,
            "priority_slowdown": slowdown,
            "overall_p50": float(np.percentile(fair_rep.latencies(), 50)) * 1e3,
            "overall_p95": _p95(fair_rep.latencies()) * 1e3,
        },
        "solo_differential": {"checked": n_checked, "total": len(fair_jobs),
                              "quick": quick},
        "dedup": dedup,
        "tenants": {t: {k: v for k, v in info.items() if k != "latencies"}
                    for t, info in fair_rep.tenants.items()},
    }

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "metrics": bench.snapshot(),
        "service": raw,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(gated)} gated counters to {out}")

    floor_misses = []
    if speedup < SPEEDUP_FLOOR:
        floor_misses.append(
            f"utilization speedup {speedup:.3f} < {SPEEDUP_FLOOR}")
    if slowdown > P95_SLOWDOWN_CEILING:
        floor_misses.append(
            f"priority p95 slowdown {slowdown:.3f} > {P95_SLOWDOWN_CEILING}")
    if dedup["bytes_avoided"] <= 0:
        floor_misses.append("dedup bytes_avoided not strictly positive")
    if floor_misses:
        for miss in floor_misses:
            print(f"FAIL floor: {miss}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json",
                        help="run-manifest output path (default BENCH_service.json)")
    parser.add_argument("--quick", action="store_true",
                        help="solo-check only the priority tenant's jobs plus "
                             "a couple of best-effort ones (CI mode); the "
                             "gated counters are identical either way")
    args = parser.parse_args(argv)
    return run(Path(args.out), quick=args.quick)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
