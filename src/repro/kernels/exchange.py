"""Internal kernels for device-side ghost updates and boundary faces (§IV-B.6).

These are the kernels TileAcc queues per region while the host computes
the next face's index sets (the hybrid CPU/GPU update of Fig. 4):

* :func:`ghost_copy_kernel` — copy a neighbour region's interior slab
  into this region's ghost slab (both device-resident);
* :func:`face_copy_kernel` — Neumann boundary: replicate the nearest
  interior plane into the ghost slab of the same region;
* :func:`face_fill_kernel` — Dirichlet boundary: fill the ghost slab with
  a constant.

Slices are passed as kernel parameters: the host computed them — that is
precisely the index work §IV-B.6 offloads to the CPU to avoid branch
divergence in the device code.
"""

from __future__ import annotations

import numpy as np

from ..cuda.kernel import KernelSpec

#: Transfers per ghost cell: one read + one write of a double.
_COPY_BYTES_PER_CELL = 16.0
#: A pure fill only writes.
_FILL_BYTES_PER_CELL = 8.0


def _ghost_copy_body(
    dst: np.ndarray,
    src: np.ndarray,
    dst_slices: tuple[slice, ...],
    src_slices: tuple[slice, ...],
) -> None:
    dst[dst_slices] = src[src_slices]


def ghost_copy_kernel() -> KernelSpec:
    return KernelSpec(
        name="ghost-copy",
        body=_ghost_copy_body,
        bytes_per_cell=_COPY_BYTES_PER_CELL,
        flops_per_cell=0.0,
        arg_access=("w", "r"),  # dst ghost slab written, src interior read
    )


def _face_copy_body(
    arr: np.ndarray,
    dst_slices: tuple[slice, ...],
    src_slices: tuple[slice, ...],
) -> None:
    arr[dst_slices] = arr[src_slices]


def face_copy_kernel() -> KernelSpec:
    return KernelSpec(
        name="face-copy",
        body=_face_copy_body,
        bytes_per_cell=_COPY_BYTES_PER_CELL,
        flops_per_cell=0.0,
        arg_access=("rw",),  # copies interior plane into its own ghost slab
    )


def _bc_faces_body(
    arr: np.ndarray,
    ops: tuple[tuple[str, tuple[slice, ...], object], ...],
) -> None:
    """Apply a batch of boundary-face operations to one region's array.

    Each op is ``("fill", dst_slices, value)`` or ``("copy", dst_slices,
    src_slices)``.  TiDA-acc batches all domain faces of a region into a
    single launch — the host already computed every index set, so one
    kernel can walk the precomputed list without divergence.
    """
    for kind, dst_slices, payload in ops:
        if kind == "fill":
            arr[dst_slices] = payload
        else:
            arr[dst_slices] = arr[payload]


def bc_faces_kernel() -> KernelSpec:
    return KernelSpec(
        name="bc-faces",
        body=_bc_faces_body,
        bytes_per_cell=_COPY_BYTES_PER_CELL,
        flops_per_cell=0.0,
        arg_access=("rw",),  # Neumann ops read the interior they replicate
    )


def _face_fill_body(
    arr: np.ndarray,
    dst_slices: tuple[slice, ...],
    value: float,
) -> None:
    arr[dst_slices] = value


def face_fill_kernel() -> KernelSpec:
    return KernelSpec(
        name="face-fill",
        body=_face_fill_body,
        bytes_per_cell=_FILL_BYTES_PER_CELL,
        flops_per_cell=0.0,
        arg_access=("w",),
    )
