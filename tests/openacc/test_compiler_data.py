"""OpenACC compiler flags, collapse validation, present table, data regions."""

import numpy as np
import pytest

from repro.cuda.runtime import CudaRuntime
from repro.errors import AccCompileError, AccError, AccPresentError
from repro.openacc.compiler import AccFlags, validate_collapse
from repro.openacc.data import PresentTable
from repro.openacc.runtime import AccRuntime


class TestAccFlags:
    def test_defaults(self):
        flags = AccFlags()
        assert flags.describe == "-ta=tesla"

    def test_pinned(self):
        assert AccFlags(pinned=True).describe == "-ta=tesla:pinned"

    def test_managed(self):
        assert AccFlags(managed=True).describe == "-ta=tesla:managed"

    def test_exclusive(self):
        with pytest.raises(AccCompileError):
            AccFlags(pinned=True, managed=True)

    def test_unknown_target(self):
        with pytest.raises(AccCompileError):
            AccFlags(target="radeon")

    def test_alloc_data_kinds(self, machine):
        rt = CudaRuntime(machine)
        assert not AccRuntime(rt).alloc_data(8).pinned
        assert AccRuntime(rt, AccFlags(pinned=True)).alloc_data(8).pinned
        managed = AccRuntime(rt, AccFlags(managed=True)).alloc_data(8)
        assert managed.location == "host"


class TestCollapse:
    def test_none_ok(self):
        assert validate_collapse(None, 3) == 1

    def test_valid(self):
        assert validate_collapse(3, 3) == 3

    def test_too_deep(self):
        with pytest.raises(AccCompileError):
            validate_collapse(4, 3)

    def test_non_int(self):
        with pytest.raises(AccCompileError):
            validate_collapse("3", 3)

    def test_nonpositive(self):
        with pytest.raises(AccCompileError):
            validate_collapse(0, 3)

    def test_bad_loop_dims(self):
        with pytest.raises(AccCompileError):
            validate_collapse(1, 0)


@pytest.fixture
def acc(machine):
    return AccRuntime(CudaRuntime(machine))


class TestPresentTable:
    def test_insert_lookup(self, acc):
        host = acc.cuda.malloc_pinned((4,))
        dev = acc.cuda.malloc((4,))
        table = PresentTable()
        table.insert(host, dev, copyout_on_delete=False)
        assert table.is_present(host)
        assert table.device_of(host) is dev

    def test_absent_raises(self):
        table = PresentTable()
        from repro.sim.hostmem import HostBuffer
        with pytest.raises(AccPresentError):
            table.device_of(HostBuffer(4))

    def test_double_insert(self, acc):
        host = acc.cuda.malloc_pinned((4,))
        dev = acc.cuda.malloc((4,))
        table = PresentTable()
        table.insert(host, dev, copyout_on_delete=False)
        with pytest.raises(AccPresentError):
            table.insert(host, dev, copyout_on_delete=False)

    def test_refcount(self, acc):
        host = acc.cuda.malloc_pinned((4,))
        dev = acc.cuda.malloc((4,))
        table = PresentTable()
        table.insert(host, dev, copyout_on_delete=False)
        table.retain(host)
        assert table.release(host) is None        # 2 -> 1
        assert table.release(host) is not None    # 1 -> 0


class TestDataRegions:
    def test_copyin_copies_and_frees(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=3.0)
        free0 = acc.cuda.mem_get_info()[0]
        with acc.data(copyin=[host]):
            assert acc.present.is_present(host)
            dev = acc.present.device_of(host)
            assert np.all(dev.array == 3.0)
        assert not acc.present.is_present(host)
        assert acc.cuda.mem_get_info()[0] == free0

    def test_copy_copies_back(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        with acc.data(copy=[host]):
            acc.present.device_of(host).array[...] = 9.0
        assert np.all(host.array == 9.0)

    def test_copyin_does_not_copy_back(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        with acc.data(copyin=[host]):
            acc.present.device_of(host).array[...] = 9.0
        assert np.all(host.array == 1.0)

    def test_copyout_allocates_uninitialized_then_copies_back(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=5.0)
        with acc.data(copyout=[host]):
            dev = acc.present.device_of(host)
            assert np.all(dev.array == 0.0)  # create: no copyin
            dev.array[...] = 2.0
        assert np.all(host.array == 2.0)

    def test_create_no_copies(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=5.0)
        with acc.data(create=[host]):
            acc.present.device_of(host).array[...] = 2.0
        assert np.all(host.array == 5.0)
        assert len(acc.cuda.trace.by_category("h2d", "d2h")) == 0

    def test_nested_regions_no_recopy(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        with acc.data(copyin=[host]):
            n_transfers = len(acc.cuda.trace.by_category("h2d"))
            with acc.data(copyin=[host]):
                assert len(acc.cuda.trace.by_category("h2d")) == n_transfers
            assert acc.present.is_present(host)  # still held by outer region
        assert not acc.present.is_present(host)

    def test_present_clause_checks(self, acc):
        host = acc.cuda.malloc_pinned((8,))
        with pytest.raises(AccPresentError):
            with acc.data(present=[host]):
                pass  # pragma: no cover
        with acc.data(copyin=[host]):
            with acc.data(present=[host]):
                pass

    def test_enter_exit_data(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=4.0)
        acc.enter_data(copyin=[host])
        assert acc.present.is_present(host)
        acc.present.device_of(host).array[...] = 7.0
        acc.exit_data(copyout=[host])
        assert np.all(host.array == 7.0)
        assert not acc.present.is_present(host)

    def test_exit_data_delete_discards(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=4.0)
        acc.enter_data(copyin=[host])
        acc.present.device_of(host).array[...] = 7.0
        acc.exit_data(delete=[host])
        assert np.all(host.array == 4.0)

    def test_update_host_device(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        acc.enter_data(copyin=[host])
        host.array[...] = 5.0
        acc.update_device(host)
        assert np.all(acc.present.device_of(host).array == 5.0)
        acc.present.device_of(host).array[...] = 6.0
        acc.update_host(host)
        assert np.all(host.array == 6.0)
        acc.exit_data(delete=[host])

    def test_update_nonpresent_raises(self, acc):
        host = acc.cuda.malloc_pinned((8,))
        with pytest.raises(AccError):
            acc.update_host(host)

    def test_managed_arrays_ignored_by_data_clauses(self, acc):
        managed = acc.cuda.malloc_managed((8,))
        with acc.data(copy=[managed]):
            assert len(acc.present) == 0

    def test_device_buffer_in_data_clause_rejected(self, acc):
        dev = acc.cuda.malloc((8,))
        with pytest.raises(AccError):
            with acc.data(copyin=[dev]):
                pass  # pragma: no cover
