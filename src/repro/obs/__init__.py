"""repro.obs — the runtime observability layer.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms), exposed as ``runtime.metrics`` on every
  :class:`~repro.cuda.runtime.CudaRuntime`;
* :mod:`repro.obs.compare` — metric-snapshot diffing and regression
  flagging;
* :mod:`repro.obs.critpath` — critical-path / overlap-efficiency /
  what-if analysis over the causal run DAG;
* :mod:`repro.obs.report` — the profiler CLI
  (``python -m repro.obs.report <trace-or-run.json> [--critpath]
  [--compare base] [--alerts] [--health] [--fail-on-alerts]
  [--format json]``);
* :mod:`repro.obs.live` — the live telemetry bus, flight recorder, and
  online anomaly watchdog (``CudaRuntime(telemetry=TelemetryBus(...))``);
* :mod:`repro.obs.watch` — the live session viewer CLI
  (``python -m repro.obs.watch session.jsonl [--follow]``);
* :mod:`repro.obs.slo` — per-tenant SLO tracking for the multi-tenant
  service: latency SLIs, error-budget accounting, multi-window
  burn-rate alerts, and SLO-aware backpressure
  (``Service(slo=..., backpressure=True)``).
"""

from .compare import compare_snapshots, failing_alerts, flatten_snapshot
from .live import (
    Alert,
    FlightRecorder,
    TelemetryBus,
    TelemetrySample,
    TelemetrySubscriber,
    Watchdog,
    default_detectors,
    severity_at_least,
)
from .critpath import (
    BLAME_COMPONENTS,
    RunDag,
    Scenario,
    blame_decomposition,
    blame_summary,
    critical_path,
    critpath_metrics,
    critpath_summary,
    overlap_report,
    replay,
    whatif,
)
from .slo import (
    JobSli,
    SloBurnDetector,
    SloPolicy,
    SloTracker,
    read_slo,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    collect,
    merge_snapshots,
    start_collection,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ObsError",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "start_collection",
    "collect",
    "compare_snapshots",
    "failing_alerts",
    "flatten_snapshot",
    "TelemetryBus",
    "TelemetrySample",
    "TelemetrySubscriber",
    "FlightRecorder",
    "Watchdog",
    "Alert",
    "default_detectors",
    "severity_at_least",
    "RunDag",
    "Scenario",
    "critical_path",
    "critpath_metrics",
    "critpath_summary",
    "overlap_report",
    "replay",
    "whatif",
    "BLAME_COMPONENTS",
    "blame_decomposition",
    "blame_summary",
    "JobSli",
    "SloBurnDetector",
    "SloPolicy",
    "SloTracker",
    "read_slo",
]
