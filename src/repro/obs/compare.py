"""Diffing two metric snapshots: the seed of bench-trajectory gating.

A snapshot (see :meth:`MetricsRegistry.snapshot`) is flattened to scalar
series and compared metric-by-metric against a baseline.  A metric
*regresses* when it moves past ``threshold`` (relative) in its bad
direction — most runtime counters (bytes moved, stall seconds, cache
misses, evictions) are **lower-is-better**, while hit/overlap/avoided
counters are **higher-is-better**.  The profiler CLI's ``--compare``
mode exits non-zero when any regression is found, so a CI job can gate
on a stored baseline manifest.
"""

from __future__ import annotations

import fnmatch
from typing import Any

#: Metric-name fragments whose growth is an improvement, not a regression.
GOOD_WHEN_HIGH = (
    "hits",
    "hit_rate",
    "avoided",
    "useful",
    "skipped",
    "overlap",
    "bandwidth",
    "utilization",
    "recovered",
    "speedup",
    "saved",
    "elided",
)


def flatten_snapshot(snapshot: dict[str, Any]) -> dict[str, float]:
    """Scalar series from a snapshot: counters, gauge high-water marks,
    histogram counts, sums, and interpolated percentiles."""
    from .metrics import Histogram

    flat: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, g in snapshot.get("gauges", {}).items():
        flat[f"{name}.max"] = float(g["max"])
    for name, h in snapshot.get("histograms", {}).items():
        flat[f"{name}.count"] = float(h["count"])
        flat[f"{name}.sum"] = float(h["sum"])
        if h.get("count"):
            hist = Histogram.from_snapshot(name, h)
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                flat[f"{name}.{label}"] = float(hist.percentile(q))
    return flat


def _is_pattern(name: str) -> bool:
    """True when ``name`` contains :mod:`fnmatch` metacharacters."""
    return any(ch in name for ch in "*?[")


def expand_patterns(
    base: dict[str, float], cur: dict[str, float],
) -> tuple[dict[str, float], dict[str, str]]:
    """Expand wildcard baseline keys against the current metric names.

    A baseline key containing ``fnmatch`` metacharacters
    (``service.tenant.*.p95``) is a *pattern*: it gates every current
    metric it matches at the pattern's stored value.  Expansion is
    deterministic — matches are applied in sorted key order — and an
    explicit baseline key always wins over a pattern covering the same
    name (so one tenant can carry a tighter bound than the wildcard).
    Returns ``(expanded baseline, origin)`` where ``origin`` maps each
    pattern-derived key back to its source pattern; a pattern matching
    *nothing* stays in the expanded baseline under its own literal name,
    so the comparison reports it as ``removed``-with-teeth (a gate that
    silently matched zero metrics would gate nothing).
    """
    expanded: dict[str, float] = {}
    origin: dict[str, str] = {}
    explicit = {k: v for k, v in base.items() if not _is_pattern(k)}
    for pattern in sorted(k for k in base if _is_pattern(k)):
        hits = sorted(fnmatch.filter(cur, pattern))
        if not hits:
            expanded[pattern] = base[pattern]
            origin[pattern] = pattern
            continue
        for name in hits:
            if name in explicit:
                continue
            expanded[name] = base[pattern]
            origin[name] = pattern
    expanded.update(explicit)
    return expanded, origin


def higher_is_better(name: str) -> bool:
    return any(frag in name for frag in GOOD_WHEN_HIGH)


def failing_alerts(
    alerts: list[dict[str, Any]],
    min_severity: str = "warning",
) -> list[dict[str, Any]]:
    """The subset of watchdog ``alerts`` at or above ``min_severity``.

    ``alerts`` is a list of :meth:`~repro.obs.live.watchdog.Alert.to_dict`
    payloads, as stored under a run manifest's ``"alerts"`` key by the
    ``repro.bench.live`` leg.  This is the predicate behind the profiler
    CLI's ``--fail-on-alerts`` gate: any returned alert fails the run.
    Alerts without a recognised severity count as failing (an unknown
    severity should never slip through a gate).
    """
    from .live.watchdog import SEVERITIES, severity_at_least

    failing = []
    for alert in alerts:
        severity = alert.get("severity", "")
        if severity not in SEVERITIES or severity_at_least(severity, min_severity):
            failing.append(alert)
    return failing


def compare_snapshots(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float = 0.10,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Compare two snapshots.

    Returns ``(rows, regressions)``: one row per metric seen in either
    snapshot (``metric``, ``baseline``, ``current``, ``delta``,
    ``rel_change``, ``verdict``), and the subset whose verdict is
    ``"REGRESSED"``.  Metrics absent from one side — including those
    whose baseline value is zero, where no relative change exists — are
    reported with verdict ``"new"``/``"removed"`` and never regress
    (there is nothing to gate against).

    Baseline keys containing wildcard metacharacters are expanded
    against the current metric names first (see :func:`expand_patterns`)
    so dynamic families like ``service.tenant.*.p95`` participate in the
    gate; rows carry a ``pattern`` key naming the source pattern, and a
    pattern that matched *no* current metric is itself a ``REGRESSED``
    row (``current=None``) — the family the baseline promised to gate
    has vanished.
    """
    cur = flatten_snapshot(current)
    base, pattern_origin = expand_patterns(flatten_snapshot(baseline), cur)
    rows: list[dict[str, Any]] = []
    regressions: list[dict[str, Any]] = []
    for name in sorted(set(cur) | set(base)):
        pattern = pattern_origin.get(name)
        if name not in base:
            rows.append({"metric": name, "baseline": None, "current": cur[name],
                         "delta": None, "rel_change": None, "verdict": "new"})
            continue
        if name not in cur:
            if pattern == name:
                # an unmatched wildcard gate: fail loudly, never silently
                row = {"metric": name, "baseline": base[name], "current": None,
                       "delta": None, "rel_change": None,
                       "verdict": "REGRESSED", "pattern": pattern}
                rows.append(row)
                regressions.append(row)
                continue
            rows.append({"metric": name, "baseline": base[name], "current": None,
                         "delta": None, "rel_change": None, "verdict": "removed"})
            continue
        b, c = base[name], cur[name]
        delta = c - b
        if b == 0.0 and c != 0.0:
            # a counter that first moved off zero: no relative change to
            # gate on, so surface it as "new" rather than an infinite
            # regression (or a silent skip)
            rows.append({"metric": name, "baseline": b, "current": c,
                         "delta": delta, "rel_change": None, "verdict": "new"})
            continue
        rel = delta / abs(b) if b != 0.0 else 0.0
        bad = (-rel if higher_is_better(name) else rel) >= threshold
        verdict = "REGRESSED" if bad else ("ok" if abs(rel) < threshold else "improved")
        row = {"metric": name, "baseline": b, "current": c,
               "delta": delta, "rel_change": rel, "verdict": verdict}
        if pattern is not None:
            row["pattern"] = pattern
        rows.append(row)
        if bad:
            regressions.append(row)
    return rows, regressions
