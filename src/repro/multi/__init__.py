"""Multi-GPU extension (the related-work direction of §VII).

The paper's related work points at multi-GPU systems (XACC, dCUDA) as the
natural next step for directive-based tiling; this package provides that
demonstrator on the simulated substrate:

* :class:`~repro.multi.runtime.MultiGpuRuntime` — N simulated devices
  sharing one host thread (one virtual clock, one trace), with
  peer-to-peer copies that occupy the source's D2H and the destination's
  H2D engines (PCIe P2P semantics, as on the paper's K40m era hardware);
* :func:`~repro.multi.heat.run_multi_gpu_heat` — the heat solver
  domain-decomposed across devices, each device running TiDA-acc over its
  slab, with packed peer transfers for the inter-device halos.

Ablation A5 (`benchmarks/test_ablation_multi_gpu.py`) measures the
strong-scaling curve.
"""

from .runtime import MultiGpuRuntime
from .heat import run_multi_gpu_heat

__all__ = ["MultiGpuRuntime", "run_multi_gpu_heat"]
