"""Box algebra: unit tests plus hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TidaError
from repro.tida.box import Box

# strategy: boxes of rank 1-3 with bounded coordinates
def boxes(ndim=None):
    def build(nd):
        los = st.tuples(*(st.integers(-50, 50) for _ in range(nd)))
        extents = st.tuples(*(st.integers(0, 30) for _ in range(nd)))
        return st.builds(
            lambda lo, ext: Box(lo, tuple(l + e for l, e in zip(lo, ext))), los, extents
        )
    if ndim is not None:
        return build(ndim)
    return st.integers(1, 3).flatmap(build)


class TestConstruction:
    def test_from_shape(self):
        b = Box.from_shape((4, 5))
        assert b.lo == (0, 0) and b.hi == (4, 5)
        assert b.shape == (4, 5)
        assert b.size == 20

    def test_from_shape_with_origin(self):
        b = Box.from_shape((2, 2), origin=(3, 4))
        assert b.lo == (3, 4) and b.hi == (5, 6)

    def test_rank_mismatch(self):
        with pytest.raises(TidaError):
            Box((0, 0), (1,))

    def test_zero_rank_rejected(self):
        with pytest.raises(TidaError):
            Box((), ())

    def test_negative_extent_rejected(self):
        with pytest.raises(TidaError):
            Box((3,), (1,))

    def test_empty_box(self):
        assert Box((2, 2), (2, 5)).is_empty
        assert Box((2, 2), (2, 5)).size == 0


class TestQueries:
    def test_contains_point(self):
        b = Box((0, 0), (4, 4))
        assert b.contains_point((0, 0))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 0))

    def test_contains_box(self):
        outer = Box((0,), (10,))
        assert outer.contains(Box((2,), (5,)))
        assert outer.contains(outer)
        assert not outer.contains(Box((5,), (12,)))

    def test_contains_empty_always(self):
        assert Box((0,), (1,)).contains(Box((50,), (50,)))

    def test_point_rank_mismatch(self):
        with pytest.raises(TidaError):
            Box((0,), (4,)).contains_point((1, 2))


class TestAlgebra:
    def test_intersect_basic(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (6, 6))
        assert a.intersect(b) == Box((2, 2), (4, 4))

    def test_intersect_disjoint_is_empty(self):
        a = Box((0,), (2,))
        b = Box((5,), (7,))
        assert a.intersect(b).is_empty
        assert not a.intersects(b)

    def test_grow_shrink(self):
        b = Box((2, 2), (4, 4))
        assert b.grow(1) == Box((1, 1), (5, 5))
        assert b.grow(1).shrink(1) == b

    def test_grow_per_axis(self):
        b = Box((2, 2), (4, 4))
        assert b.grow((1, 0)) == Box((1, 2), (5, 4))

    def test_shift(self):
        assert Box((0,), (2,)).shift((5,)) == Box((5,), (7,))

    def test_shift_rank_mismatch(self):
        with pytest.raises(TidaError):
            Box((0,), (2,)).shift((1, 2))

    @given(boxes(), boxes())
    def test_property_intersect_commutative(self, a, b):
        if a.ndim != b.ndim:
            return
        assert a.intersect(b) == b.intersect(a)

    @given(boxes())
    def test_property_intersect_self_identity(self, b):
        assert b.intersect(b) == b

    @given(boxes(), boxes())
    def test_property_intersection_contained(self, a, b):
        if a.ndim != b.ndim:
            return
        i = a.intersect(b)
        assert a.contains(i) and b.contains(i)

    @given(boxes(), st.integers(0, 5))
    def test_property_grow_shrink_roundtrip(self, b, g):
        assert b.grow(g).shrink(g) == b

    @given(boxes(), st.integers(0, 5))
    def test_property_grow_size_monotone(self, b, g):
        assert b.grow(g).size >= b.size

    @given(boxes(ndim=2))
    def test_property_shift_preserves_shape(self, b):
        assert b.shift((7, -3)).shape == b.shape


class TestSlices:
    def test_slices_default_origin(self):
        b = Box((1, 2), (3, 5))
        assert b.slices() == (slice(1, 3), slice(2, 5))

    def test_slices_with_origin(self):
        b = Box((5,), (8,))
        assert b.slices(origin=(4,)) == (slice(1, 4),)

    def test_slices_below_origin_rejected(self):
        with pytest.raises(TidaError):
            Box((0,), (2,)).slices(origin=(1,))


class TestSplitChunks:
    def test_split(self):
        a, b = Box((0,), (10,)).split(0, 4)
        assert a == Box((0,), (4,))
        assert b == Box((4,), (10,))

    def test_split_at_edge(self):
        a, b = Box((0,), (10,)).split(0, 0)
        assert a.is_empty and b == Box((0,), (10,))

    def test_split_outside_rejected(self):
        with pytest.raises(TidaError):
            Box((0,), (10,)).split(0, 11)

    def test_split_bad_axis(self):
        with pytest.raises(TidaError):
            Box((0,), (10,)).split(1, 5)

    def test_chunks_partition(self):
        parts = list(Box((0, 0), (10, 3)).chunks(0, 4))
        assert [p.shape for p in parts] == [(4, 3), (4, 3), (2, 3)]
        assert sum(p.size for p in parts) == 30

    def test_chunks_bad_extent(self):
        with pytest.raises(TidaError):
            list(Box((0,), (10,)).chunks(0, 0))

    @given(boxes(ndim=1).filter(lambda b: not b.is_empty), st.integers(1, 10))
    def test_property_chunks_exactly_partition(self, b, chunk):
        parts = list(b.chunks(0, chunk))
        assert sum(p.size for p in parts) == b.size
        # contiguous, non-overlapping, ordered
        cursor = b.lo[0]
        for p in parts:
            assert p.lo[0] == cursor
            cursor = p.hi[0]
        assert cursor == b.hi[0]
