"""Failure injection across the TiDA-acc stack."""

import numpy as np
import pytest

from repro.core.library import TidaAcc
from repro.core.tile_acc import TileAcc
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import (
    CudaMemoryAllocationError,
    TidaError,
    TileAccError,
)
from repro.openacc.runtime import AccRuntime
from repro.tida.tile_array import TileArray


class TestOutOfMemory:
    def test_second_field_does_not_fit(self, machine):
        """The first field's TileAcc grabs the memory; the second can't
        get even one slot."""
        region_bytes = 4 * 8
        rt = CudaRuntime(machine, device_memory_limit=region_bytes + 8)
        acc = AccRuntime(rt)
        ta1 = TileArray((16,), n_regions=4, runtime=rt, label="a")
        mgr1 = TileAcc(rt, acc, ta1)
        assert mgr1.n_slots == 1
        mgr1.request_device(0)  # slot buffer now allocated
        ta2 = TileArray((16,), n_regions=4, runtime=rt, label="b")
        with pytest.raises(TileAccError):
            TileAcc(rt, acc, ta2)

    def test_mid_run_realloc_oom_surfaces_and_recovers(self, machine):
        """Uneven regions force a realloc; if a rogue allocation stole the
        memory meanwhile, request_device raises cudaErrorMemoryAllocation
        without corrupting state, and works again once memory returns."""
        rt = CudaRuntime(machine, device_memory_limit=184)
        acc = AccRuntime(rt)
        # interiors 4,4,2 -> ghosted local buffers of 48,48,32 bytes
        ta = TileArray((10,), n_regions=3, runtime=rt, ghost=1, label="u")
        mgr = TileAcc(rt, acc, ta, n_slots=1)
        mgr.request_device(2)           # small edge region: 32-byte buffer
        hog = rt.malloc((18,))          # 144 bytes
        mgr.request_host(2)
        with pytest.raises(CudaMemoryAllocationError):
            # region 0 needs a 48-byte buffer: realloc frees 32 but only
            # 40 are free -> cudaErrorMemoryAllocation
            mgr.request_device(0)
        rt.free(hog)
        buf, _ = mgr.request_device(0)  # recovers once memory is back
        assert buf.shape == (6,)
        mgr.request_host(0)

    def test_library_reports_unfittable_field(self, machine):
        lib = TidaAcc(machine, device_memory_limit=64)
        with pytest.raises(TileAccError):
            lib.add_array("u", (64,), n_regions=2)  # 32-cell regions: 256 B


class TestApiMisuse:
    def test_compute_with_foreign_tile(self, machine):
        lib_a = TidaAcc(machine)
        lib_b = TidaAcc(machine)
        lib_a.add_array("u", (8,), n_regions=2)
        lib_b.add_array("u", (8,), n_regions=2)
        tile_from_b = lib_b.field("u").tiles()[0]
        k = KernelSpec(name="k", body=None, bytes_per_cell=8.0)
        with pytest.raises(TidaError):
            lib_a.compute(tile_from_b, k, gpu=True)

    def test_iterator_mixing_libraries(self, machine):
        from repro.tida.tile_iterator import TileIterator
        lib_a = TidaAcc(machine)
        lib_a.add_array("u", (8,), n_regions=2)
        foreign = TileArray((8,), n_regions=2)
        it = TileIterator(lib_a.field("u"), foreign)
        k = KernelSpec(name="k", body=None, bytes_per_cell=8.0)
        with pytest.raises(TidaError):
            lib_a.compute(it.reset(gpu=True), k)

    def test_swap_unknown_field(self, machine):
        lib = TidaAcc(machine)
        lib.add_array("u", (8,), n_regions=2)
        with pytest.raises(TidaError):
            lib.swap("u", "ghost-field")

    def test_fill_boundary_unknown_field(self, machine):
        lib = TidaAcc(machine)
        with pytest.raises(TidaError):
            lib.fill_boundary("nope")

    def test_mismatched_acc_runtime(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        with pytest.raises(TileAccError):
            TidaAcc(runtime=rt_a, acc=AccRuntime(rt_b))


class TestStateRecovery:
    def test_failed_compute_leaves_cache_consistent(self, machine):
        """A kernel body that raises (user bug) must not corrupt the cache:
        the next request works and data is intact."""
        lib = TidaAcc(machine)
        lib.add_array("u", (8,), n_regions=2, fill=3.0)

        def bad_body(arr, lo, hi):
            raise RuntimeError("user bug")

        bad = KernelSpec(name="bad", body=bad_body, bytes_per_cell=8.0)
        tile = lib.field("u").tiles()[0]
        with pytest.raises(RuntimeError):
            lib.compute(tile, bad, gpu=True)
        # the region is marked device-resident (launch was issued); the
        # library can still round-trip it
        assert np.all(lib.gather("u") == 3.0)

    def test_oom_field_leaves_library_usable(self, machine):
        lib = TidaAcc(machine, device_memory_limit=1024)
        lib.add_array("small", (8,), n_regions=2, fill=1.0)
        with pytest.raises(TileAccError):
            lib.add_array("huge", (4096,), n_regions=2)
        # the failed field is not half-registered
        with pytest.raises(TidaError):
            lib.field("huge")
        assert np.all(lib.gather("small") == 1.0)
