#!/usr/bin/env python
"""Image-processing workload: tiled 3x3 box blur on a 2-D image.

The intro motivates GPUs for image processing; this example runs a
repeated box blur over a synthetic image with a 2-D region grid
(corner ghosts included — a stricter exchange than the heat stencil's
faces), on the GPU path with periodic boundaries, and verifies against
pure numpy.

Run:  python examples/image_blur.py [--size 256] [--grid 4] [--passes 5]
"""

import argparse

import numpy as np

from repro import Periodic, TidaAcc, blur_kernel
from repro.baselines.common import apply_bc_global
from repro.kernels.blur import blur_reference_step


def synthetic_image(size: int) -> np.ndarray:
    y, x = np.mgrid[0:size, 0:size]
    return (np.sin(x / 7.0) * np.cos(y / 11.0) + ((x // 16 + y // 16) % 2)).astype(float)


def reference(img: np.ndarray, passes: int) -> np.ndarray:
    full = np.zeros((img.shape[0] + 2, img.shape[1] + 2))
    full[1:-1, 1:-1] = img
    for _ in range(passes):
        apply_bc_global(full, 1, Periodic())
        full = blur_reference_step(full)
    return full[1:-1, 1:-1].copy()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--grid", type=int, default=4, help="regions per side")
    parser.add_argument("--passes", type=int, default=5)
    args = parser.parse_args()

    img = synthetic_image(args.size)
    region = args.size // args.grid
    lib = TidaAcc()
    lib.add_array("img", img.shape, region_shape=(region, region), halo=1)
    lib.add_array("tmp", img.shape, region_shape=(region, region), halo=1)
    lib.scatter("img", img)

    kernel = blur_kernel()
    for _ in range(args.passes):
        lib.fill_boundary("img", Periodic())
        for dst, src in lib.iterator("tmp", "img").reset(gpu=True):
            lib.compute((dst, src), kernel, gpu=True)
        lib.swap("img", "tmp")

    out = lib.gather("img")
    ref = reference(img, args.passes)
    assert np.allclose(out, ref), "blur diverged from numpy reference"

    print(f"blurred {img.shape} image, {args.passes} passes, "
          f"{args.grid}x{args.grid} regions")
    print(f"  input  std: {img.std():.4f}")
    print(f"  output std: {out.std():.4f} (smoothing verified against numpy)")
    print(f"  virtual time: {lib.now * 1e3:.3f} ms on {lib.runtime.machine.name}")


if __name__ == "__main__":
    main()
