"""Machine-candidate autotuning with the DAG-replay surrogate."""

import pytest

from repro.baselines.tida_runners import run_tida_compute
from repro.check.explore import perturb_machine
from repro.config import k40m_pcie3, p100_nvlink
from repro.errors import ReproError
from repro.model.autotune import autotune_machine, sweep_machines

CONFIG = dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
              device_memory_limit=70_000)


@pytest.fixture(scope="module")
def base():
    return k40m_pcie3()


def measure_factory(calls=None):
    def measure(machine):
        if calls is not None:
            calls.append(machine.name)
        return run_tida_compute(machine, check="observe", **CONFIG)
    return measure


class TestSweepMachines:
    def test_replay_simulates_base_and_winner_only(self, base):
        calls = []
        candidates = [base] + [perturb_machine(base, s) for s in (1, 2, 3)]
        points = sweep_machines(
            candidates, measure_result_fn=measure_factory(calls),
            strategy="replay", base=base,
        )
        assert len(points) == 4
        # one recording run plus exactly one winner verification
        assert len(calls) == 2
        assert calls[0] == base.name
        surrogates = [p.surrogate for p in points]
        assert surrogates.count("measure") == 1   # the verified winner
        assert surrogates.count("replay") == 3

    def test_replay_ranking_matches_full_measurement(self, base):
        candidates = [base] + [perturb_machine(base, s) for s in (1, 2, 3, 4)]
        replayed = sweep_machines(
            candidates, measure_result_fn=measure_factory(),
            strategy="replay", base=base,
        )
        measured = sweep_machines(
            candidates, measure_result_fn=measure_factory(),
            strategy="measure",
        )
        rank = lambda pts: min(range(len(pts)), key=lambda i: pts[i].seconds)
        assert rank(replayed) == rank(measured)
        # per-candidate predictions track the measurements closely
        for r, m in zip(replayed, measured):
            assert r.seconds == pytest.approx(m.seconds, rel=0.05)

    def test_identity_candidate_prediction_is_exact(self, base):
        points = sweep_machines(
            [base], measure_result_fn=measure_factory(), strategy="replay",
        )
        # the only candidate is the winner: verified by a real measurement
        assert points[0].surrogate == "measure"
        measured = sweep_machines(
            [base], measure_result_fn=measure_factory(), strategy="measure",
        )
        assert points[0].seconds == pytest.approx(measured[0].seconds)

    def test_autotune_machine_prefers_faster_hardware(self, base):
        fast = p100_nvlink()
        winner = autotune_machine(
            [base, fast], measure_result_fn=measure_factory(),
            strategy="replay", base=base,
        )
        assert winner is fast

    def test_validation(self, base):
        with pytest.raises(ReproError, match="strategy"):
            sweep_machines([base], measure_result_fn=measure_factory(),
                           strategy="model")
        with pytest.raises(ReproError, match="non-empty"):
            sweep_machines([], measure_result_fn=measure_factory())

    def test_replay_requires_a_dag(self, base):
        def no_dag(machine):
            res = run_tida_compute(machine, **CONFIG)   # checker disarmed
            assert res.dag is None
            return res

        with pytest.raises(ReproError, match="DAG"):
            sweep_machines([base], measure_result_fn=no_dag,
                           strategy="replay")
