"""Hardware-spec validation and preset sanity."""

import pytest

from repro.config import (
    CUDA_FASTMATH,
    CUDA_LIBM,
    PGI_MATH,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MathModel,
    NVLINK_1,
    PCIE_GEN3_X16,
    TESLA_K40M,
    TESLA_P100,
    k40m_pcie3,
    p100_nvlink,
)
from repro.errors import ConfigError


class TestLinkSpec:
    def test_transfer_time_pinned(self):
        link = LinkSpec(name="l", h2d_bandwidth=1e9, d2h_bandwidth=2e9, latency=1e-6)
        assert link.transfer_time(1e9, direction="h2d", pinned=True) == pytest.approx(1.0 + 1e-6)
        assert link.transfer_time(1e9, direction="d2h", pinned=True) == pytest.approx(0.5 + 1e-6)

    def test_pageable_factor(self):
        link = LinkSpec(name="l", h2d_bandwidth=1e9, d2h_bandwidth=1e9, latency=0.0,
                        pageable_bandwidth_factor=0.5)
        assert link.transfer_time(1e9, direction="h2d", pinned=False) == pytest.approx(2.0)

    def test_zero_bytes_pays_latency(self):
        assert PCIE_GEN3_X16.transfer_time(0, direction="h2d", pinned=True) == PCIE_GEN3_X16.latency

    def test_bad_direction(self):
        with pytest.raises(ConfigError):
            PCIE_GEN3_X16.transfer_time(1, direction="sideways", pinned=True)

    def test_negative_bytes(self):
        with pytest.raises(ConfigError):
            PCIE_GEN3_X16.transfer_time(-1, direction="h2d", pinned=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkSpec(name="l", h2d_bandwidth=0, d2h_bandwidth=1, latency=0)
        with pytest.raises(ConfigError):
            LinkSpec(name="l", h2d_bandwidth=1, d2h_bandwidth=1, latency=-1)
        with pytest.raises(ConfigError):
            LinkSpec(name="l", h2d_bandwidth=1, d2h_bandwidth=1, latency=0,
                     pageable_bandwidth_factor=1.5)

    def test_nvlink_at_least_5x_pcie(self):
        """The paper intro's claim, encoded in the presets."""
        assert NVLINK_1.h2d_bandwidth >= 5 * PCIE_GEN3_X16.h2d_bandwidth


class TestGpuSpec:
    def test_kernel_time_roofline(self):
        gpu = TESLA_K40M
        mem_bound = gpu.kernel_time(bytes_moved=1e9, flops=1.0)
        assert mem_bound == pytest.approx(1e9 / gpu.mem_bandwidth)
        flop_bound = gpu.kernel_time(bytes_moved=1.0, flops=1e12)
        assert flop_bound == pytest.approx(1e12 / gpu.dp_flops)

    def test_untuned_penalty(self):
        gpu = TESLA_K40M
        tuned = gpu.kernel_time(bytes_moved=1e9, flops=0)
        untuned = gpu.kernel_time(bytes_moved=1e9, flops=0, tuned_geometry=False)
        assert untuned > tuned

    def test_allocatable(self):
        assert TESLA_K40M.allocatable_bytes == TESLA_K40M.memory_bytes - TESLA_K40M.reserved_bytes

    def test_validation(self):
        with pytest.raises(ConfigError):
            GpuSpec(name="g", memory_bytes=0, reserved_bytes=0, dp_flops=1,
                    mem_bandwidth=1, kernel_launch_overhead=1)
        with pytest.raises(ConfigError):
            GpuSpec(name="g", memory_bytes=10, reserved_bytes=10, dp_flops=1,
                    mem_bandwidth=1, kernel_launch_overhead=1)
        with pytest.raises(ConfigError):
            GpuSpec(name="g", memory_bytes=10, reserved_bytes=0, dp_flops=1,
                    mem_bandwidth=1, kernel_launch_overhead=1, copy_engines=3)

    def test_negative_work_rejected(self):
        with pytest.raises(ConfigError):
            TESLA_K40M.kernel_time(bytes_moved=-1, flops=0)

    def test_p100_faster_than_k40(self):
        assert TESLA_P100.dp_flops > TESLA_K40M.dp_flops
        assert TESLA_P100.mem_bandwidth > TESLA_K40M.mem_bandwidth


class TestMathModels:
    def test_ordering(self):
        """libm > pgi >= fastmath per special function (the Fig. 6 premise)."""
        for attr in ("sin_cost", "cos_cost", "sqrt_cost"):
            assert getattr(CUDA_LIBM, attr) > getattr(PGI_MATH, attr)
            assert getattr(PGI_MATH, attr) >= getattr(CUDA_FASTMATH, attr)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MathModel(name="m", sin_cost=0, cos_cost=1, sqrt_cost=1)


class TestMachineSpec:
    def test_with_gpu_memory(self):
        m = k40m_pcie3()
        limited = m.with_gpu_memory(1_000_000, reserved_bytes=0)
        assert limited.gpu.allocatable_bytes == 1_000_000
        assert m.gpu.allocatable_bytes != 1_000_000  # original untouched

    def test_with_math(self):
        m = k40m_pcie3().with_math(CUDA_LIBM)
        assert m.math is CUDA_LIBM

    def test_with_link(self):
        m = k40m_pcie3().with_link(NVLINK_1)
        assert m.link is NVLINK_1
        assert m.gpu is TESLA_K40M

    def test_presets_build(self):
        assert k40m_pcie3().gpu.name == "tesla-k40m"
        assert p100_nvlink().link.name == "nvlink-1.0"

    def test_cpu_kernel_time(self):
        cpu = k40m_pcie3().cpu
        assert cpu.kernel_time(bytes_moved=cpu.mem_bandwidth, flops=0) == pytest.approx(1.0)
