"""Host memory buffers: pageable, pinned, and managed views.

The paper's §II-B distinguishes three kinds of host allocation and the
evaluation (Fig. 1) hinges on their different transfer behaviour:

* **pageable** — ordinary ``malloc`` memory; transfers are staged through
  an internal pinned buffer at roughly half bandwidth and ``cudaMemcpyAsync``
  degenerates to a synchronous copy;
* **pinned** — ``cudaMallocHost`` page-locked memory; full PCIe bandwidth
  and true asynchronous copies (required for stream overlap);
* **managed** — ``cudaMallocManaged``; a single pointer valid on both
  sides, migrated on demand by the driver (modelled in
  :mod:`repro.cuda.uvm`).

In *functional* mode a buffer owns a real numpy array; in *timing-only*
mode it records only shape/dtype so paper-sized (512³) experiments fit in
laptop RAM.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..errors import CudaInvalidValueError, TimingModeError


def _normalize_shape(shape: int | tuple[int, ...]) -> tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    if any(s < 0 for s in shape):
        raise CudaInvalidValueError(f"negative extent in shape {shape}")
    return shape


class HostBuffer:
    """A host-side allocation.

    Attributes
    ----------
    pinned:
        Whether the allocation is page-locked (``cudaMallocHost``).
    functional:
        Whether a real numpy array backs the buffer.
    """

    __slots__ = ("shape", "dtype", "pinned", "functional", "size", "nbytes",
                 "_array", "_freed", "label")

    def __init__(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        pinned: bool = False,
        functional: bool = True,
        fill: float | None = None,
        label: str = "",
    ) -> None:
        self.shape = _normalize_shape(shape)
        self.dtype = np.dtype(dtype)
        self.pinned = bool(pinned)
        self.functional = bool(functional)
        self.label = label
        # cached: read on every transfer-time estimate
        self.size = math.prod(self.shape)
        self.nbytes = self.dtype.itemsize * self.size
        self._freed = False
        if self.functional:
            self._array = np.zeros(self.shape, dtype=self.dtype)
            if fill is not None:
                self._array.fill(fill)
        else:
            self._array = None

    @property
    def freed(self) -> bool:
        return self._freed

    @property
    def array(self) -> np.ndarray:
        """The backing numpy array (functional mode only)."""
        if self._freed:
            raise CudaInvalidValueError(f"host buffer {self.label or id(self)} used after free")
        if self._array is None:
            raise TimingModeError(
                f"host buffer {self.label or id(self)} has no backing array "
                '(timing-only run, mode="timing"); construct the runtime with '
                'mode="functional" (functional=True) for data access'
            )
        return self._array

    def free(self) -> None:
        """Release the allocation; later array access raises."""
        if self._freed:
            raise CudaInvalidValueError("double free of host buffer")
        self._freed = True
        self._array = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "pinned" if self.pinned else "pageable"
        mode = "functional" if self.functional else "timing-only"
        return f"HostBuffer({self.label or '?'}, shape={self.shape}, {kind}, {mode})"
