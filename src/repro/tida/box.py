"""Integer box algebra.

A :class:`Box` is an axis-aligned n-dimensional index region with
inclusive lower bound ``lo`` and *exclusive* upper bound ``hi`` (numpy
slice convention).  Boxes describe domains, regions, tiles, ghost zones
and their intersections; the decomposition and ghost-exchange logic is
built entirely on this algebra, which is what the property-based tests
target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TidaError


@dataclass(frozen=True)
class Box:
    """Half-open integer box ``[lo, hi)`` in n dimensions."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        lo = tuple(int(x) for x in self.lo)
        hi = tuple(int(x) for x in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise TidaError(f"lo {lo} and hi {hi} have different ranks")
        if len(lo) == 0:
            raise TidaError("boxes must have at least one dimension")
        if any(h < l for l, h in zip(lo, hi)):
            raise TidaError(f"box has negative extent: lo={lo}, hi={hi}")

    @classmethod
    def from_shape(cls, shape: tuple[int, ...], origin: tuple[int, ...] | None = None) -> "Box":
        """The box ``[origin, origin + shape)`` (origin defaults to zero)."""
        shape = tuple(int(s) for s in shape)
        if origin is None:
            origin = (0,) * len(shape)
        origin = tuple(int(o) for o in origin)
        return cls(lo=origin, hi=tuple(o + s for o, s in zip(origin, shape)))

    # -- basic geometry ------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_empty(self) -> bool:
        return any(h == l for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: tuple[int, ...]) -> bool:
        if len(point) != self.ndim:
            raise TidaError(f"point rank {len(point)} != box rank {self.ndim}")
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains(self, other: "Box") -> bool:
        """True when ``other`` lies entirely inside this box (empty boxes count)."""
        self._check_rank(other)
        if other.is_empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def _check_rank(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise TidaError(f"rank mismatch: {self.ndim} vs {other.ndim}")

    # -- algebra ---------------------------------------------------------------

    def intersect(self, other: "Box") -> "Box":
        """The overlap of two boxes (possibly empty, clamped per-axis)."""
        self._check_rank(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        hi = tuple(max(l, h) for l, h in zip(lo, hi))
        return Box(lo=lo, hi=hi)

    def intersects(self, other: "Box") -> bool:
        return not self.intersect(other).is_empty

    def grow(self, ghost: int | tuple[int, ...]) -> "Box":
        """Expand by ``ghost`` cells on every face (per-axis when a tuple)."""
        g = self._ghost_tuple(ghost)
        return Box(
            lo=tuple(l - gi for l, gi in zip(self.lo, g)),
            hi=tuple(h + gi for h, gi in zip(self.hi, g)),
        )

    def shrink(self, ghost: int | tuple[int, ...]) -> "Box":
        g = self._ghost_tuple(ghost)
        return self.grow(tuple(-gi for gi in g))

    def _ghost_tuple(self, ghost: int | tuple[int, ...]) -> tuple[int, ...]:
        if isinstance(ghost, int):
            return (ghost,) * self.ndim
        ghost = tuple(int(g) for g in ghost)
        if len(ghost) != self.ndim:
            raise TidaError(f"ghost rank {len(ghost)} != box rank {self.ndim}")
        return ghost

    def shift(self, offset: tuple[int, ...]) -> "Box":
        """Translate by ``offset``."""
        if len(offset) != self.ndim:
            raise TidaError(f"offset rank {len(offset)} != box rank {self.ndim}")
        return Box(
            lo=tuple(l + o for l, o in zip(self.lo, offset)),
            hi=tuple(h + o for h, o in zip(self.hi, offset)),
        )

    # -- numpy interface --------------------------------------------------------

    def slices(self, origin: tuple[int, ...] | None = None) -> tuple[slice, ...]:
        """Numpy slices selecting this box from an array whose index 0 sits
        at ``origin`` in global coordinates (defaults to the global origin)."""
        if origin is None:
            origin = (0,) * self.ndim
        if len(origin) != self.ndim:
            raise TidaError(f"origin rank {len(origin)} != box rank {self.ndim}")
        for l, o in zip(self.lo, origin):
            if l - o < 0:
                raise TidaError(f"box {self} extends below array origin {origin}")
        return tuple(slice(l - o, h - o) for l, h, o in zip(self.lo, self.hi, origin))

    # -- decomposition support ----------------------------------------------------

    def split(self, axis: int, cut: int) -> tuple["Box", "Box"]:
        """Split into two boxes at global index ``cut`` along ``axis``."""
        if not 0 <= axis < self.ndim:
            raise TidaError(f"axis {axis} out of range for rank {self.ndim}")
        if not self.lo[axis] <= cut <= self.hi[axis]:
            raise TidaError(f"cut {cut} outside box extent on axis {axis}")
        hi_a = list(self.hi)
        hi_a[axis] = cut
        lo_b = list(self.lo)
        lo_b[axis] = cut
        return Box(self.lo, tuple(hi_a)), Box(tuple(lo_b), self.hi)

    def chunks(self, axis: int, chunk: int) -> Iterator["Box"]:
        """Yield consecutive boxes of at most ``chunk`` extent along ``axis``."""
        if chunk <= 0:
            raise TidaError(f"chunk extent must be positive, got {chunk}")
        lo = self.lo[axis]
        while lo < self.hi[axis]:
            hi = min(lo + chunk, self.hi[axis])
            lo_t = list(self.lo)
            hi_t = list(self.hi)
            lo_t[axis] = lo
            hi_t[axis] = hi
            yield Box(tuple(lo_t), tuple(hi_t))
            lo = hi

    def __repr__(self) -> str:
        return f"Box(lo={self.lo}, hi={self.hi})"
