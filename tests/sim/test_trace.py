"""Unit and property tests for the trace recorder and overlap metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.trace import Trace, TraceEvent


def ev(lane, start, end, category="kernel", name="op", stream=None):
    return TraceEvent(name=name, category=category, lane=lane, start=start, end=end, stream=stream)


class TestTraceEvent:
    def test_duration(self):
        assert ev("a", 1.0, 3.5).duration == 2.5

    def test_end_before_start_rejected(self):
        with pytest.raises(SimulationError):
            ev("a", 2.0, 1.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent(name="x", category="bogus", lane="a", start=0, end=1)

    def test_all_known_categories_accepted(self):
        for cat in ("h2d", "d2h", "kernel", "host", "sync"):
            ev("a", 0, 1, category=cat)


class TestTraceBasics:
    def test_empty_trace(self):
        t = Trace()
        assert len(t) == 0
        assert t.span() == 0.0
        assert t.gantt() == "(empty trace)"

    def test_record_and_iterate(self):
        t = Trace()
        t.record("a", "kernel", "compute", 0.0, 1.0)
        t.record("b", "h2d", "h2d", 1.0, 2.0)
        assert len(t) == 2
        assert [e.name for e in t] == ["a", "b"]

    def test_span(self):
        t = Trace()
        t.add(ev("a", 1.0, 2.0))
        t.add(ev("b", 5.0, 9.0))
        assert t.span() == 8.0

    def test_busy_time_per_lane(self):
        t = Trace()
        t.add(ev("compute", 0, 2))
        t.add(ev("compute", 3, 4))
        t.add(ev("h2d", 0, 10, category="h2d"))
        assert t.busy_time("compute") == 3.0
        assert t.busy_time("h2d") == 10.0
        assert t.busy_time("nothing") == 0.0

    def test_filters(self):
        t = Trace()
        t.add(ev("compute", 0, 1, category="kernel"))
        t.add(ev("h2d", 0, 1, category="h2d"))
        assert len(t.by_category("kernel")) == 1
        assert len(t.by_lane("h2d")) == 1
        assert len(t.filter(lambda e: e.end > 0.5)) == 2

    def test_lanes_preserve_first_seen_order(self):
        t = Trace()
        t.add(ev("b", 0, 1))
        t.add(ev("a", 0, 1))
        t.add(ev("b", 1, 2))
        assert t.lanes() == ["b", "a"]

    def test_to_rows(self):
        t = Trace()
        t.record("a", "h2d", "h2d", 0.0, 1.0, stream=3, nbytes=64)
        rows = t.to_rows()
        assert rows[0]["name"] == "a"
        assert rows[0]["stream"] == 3
        assert rows[0]["nbytes"] == 64


class TestOverlap:
    def test_disjoint_lanes_no_overlap(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        t.add(ev("b", 1, 2))
        assert t.overlap_time(["a"], ["b"]) == 0.0

    def test_full_overlap(self):
        t = Trace()
        t.add(ev("a", 0, 2))
        t.add(ev("b", 0, 2))
        assert t.overlap_time(["a"], ["b"]) == 2.0

    def test_partial_overlap(self):
        t = Trace()
        t.add(ev("a", 0, 3))
        t.add(ev("b", 2, 5))
        assert t.overlap_time(["a"], ["b"]) == 1.0

    def test_multiple_intervals_merge(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        t.add(ev("a", 1, 2))     # touching intervals merge
        t.add(ev("b", 0.5, 1.5))
        assert t.overlap_time(["a"], ["b"]) == pytest.approx(1.0)

    def test_lane_groups(self):
        t = Trace()
        t.add(ev("h2d", 0, 2, category="h2d"))
        t.add(ev("d2h", 3, 5, category="d2h"))
        t.add(ev("compute", 1, 4))
        assert t.overlap_time(["h2d", "d2h"], ["compute"]) == pytest.approx(2.0)

    def test_overlap_fraction_no_transfers(self):
        t = Trace()
        t.add(ev("compute", 0, 1))
        assert t.overlap_fraction(["h2d"], ["compute"]) == 0.0

    def test_overlap_fraction_full(self):
        t = Trace()
        t.add(ev("h2d", 0, 1, category="h2d"))
        t.add(ev("compute", 0, 2))
        assert t.overlap_fraction(["h2d"], ["compute"]) == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            min_size=0, max_size=20,
        ),
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            min_size=0, max_size=20,
        ),
    )
    def test_property_overlap_bounded_and_symmetric(self, ivs_a, ivs_b):
        t = Trace()
        for s, d in ivs_a:
            t.add(ev("a", s, s + d))
        for s, d in ivs_b:
            t.add(ev("b", s, s + d))
        ab = t.overlap_time(["a"], ["b"])
        ba = t.overlap_time(["b"], ["a"])
        assert ab == pytest.approx(ba)
        assert ab <= min(t.busy_time("a"), t.busy_time("b")) + 1e-9
        assert ab >= 0.0

    def test_self_overlap_equals_merged_busy(self):
        t = Trace()
        t.add(ev("a", 0, 2))
        t.add(ev("a", 1, 3))  # overlapping events on one (non-engine) lane
        assert t.overlap_time(["a"], ["a"]) == pytest.approx(3.0)


class TestGantt:
    def test_contains_lanes_and_legend(self):
        t = Trace()
        t.add(ev("compute", 0, 1))
        t.add(ev("h2d", 0, 0.5, category="h2d"))
        out = t.gantt(width=40)
        assert "compute" in out
        assert "h2d" in out
        assert "legend" in out
        assert "#" in out and "<" in out

    def test_width_validation(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        with pytest.raises(SimulationError):
            t.gantt(width=5)

    def test_lane_subset(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        t.add(ev("b", 0, 1))
        out = t.gantt(width=40, lanes=["a"])
        assert "a" in out
        assert "\nb" not in out

    def test_header_ruler_matches_row_width(self):
        # regression: the header used a fixed pad computed from "%g", so
        # span labels of other lengths skewed the closing "|" off the
        # row boxes.  The ruler must end exactly where the rows do.
        for span in (1.0, 0.0001234, 123456.0):
            t = Trace()
            t.add(ev("a", 0, span))
            header, row = t.gantt(width=40).splitlines()[:2]
            assert header.rstrip().endswith("|")
            assert len(header.rstrip()) == len(row)

    def test_header_shows_span_label(self):
        t = Trace()
        t.add(ev("a", 0.0, 2.5))
        header = t.gantt(width=40).splitlines()[0]
        assert "0.0s" in header
        assert "2.5s" in header


class TestBusyTimeMerging:
    def test_overlapping_host_events_not_double_counted(self):
        # regression: summing durations over-counted lanes (like "host")
        # where events recorded by different layers overlap in time
        t = Trace()
        t.add(ev("host", 0, 2, category="host"))
        t.add(ev("host", 1, 3, category="host"))
        assert t.busy_time("host") == pytest.approx(3.0)

    def test_contained_event_adds_nothing(self):
        t = Trace()
        t.add(ev("host", 0, 10, category="host"))
        t.add(ev("host", 2, 3, category="host"))
        assert t.busy_time("host") == pytest.approx(10.0)

    def test_disjoint_events_still_sum(self):
        t = Trace()
        t.add(ev("host", 0, 1, category="host"))
        t.add(ev("host", 5, 7, category="host"))
        assert t.busy_time("host") == pytest.approx(3.0)

    def test_busy_time_bounded_by_span(self):
        t = Trace()
        t.add(ev("host", 0, 1, category="host"))
        t.add(ev("host", 0.5, 1.5, category="host"))
        t.add(ev("host", 0.25, 0.75, category="host"))
        assert t.busy_time("host") <= t.span() + 1e-12


class TestObservabilitySidechannels:
    def test_to_rows_includes_duration(self):
        t = Trace()
        t.record("a", "kernel", "compute", 1.0, 3.5)
        assert t.to_rows()[0]["duration"] == pytest.approx(2.5)

    def test_counter_samples_and_marks_recorded(self):
        t = Trace()
        t.record_counter("queue_depth:compute", 0.0, 1.0)
        t.record_counter("queue_depth:compute", 1.0, 2.0)
        t.mark("cache-evict", 0.5, region=3, slot=1)
        assert t.counter_tracks == {"queue_depth:compute": [(0.0, 1.0), (1.0, 2.0)]}
        assert t.marks[0]["name"] == "cache-evict"
        assert t.marks[0]["args"] == {"region": 3, "slot": 1}

    def test_negative_timestamps_rejected(self):
        t = Trace()
        with pytest.raises(SimulationError):
            t.record_counter("x", -1.0, 0.0)
        with pytest.raises(SimulationError):
            t.mark("x", -1.0)

    def test_last_event(self):
        t = Trace()
        assert t.last_event is None
        t.add(ev("a", 0, 1))
        e = t.add(ev("b", 1, 2))
        assert t.last_event is e

    def test_sidechannels_do_not_affect_timing_metrics(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        t.record_counter("c", 0.0, 99.0)
        t.mark("m", 5000.0)
        assert t.span() == 1.0
        assert t.busy_time("a") == 1.0
        assert len(t) == 1

    def test_chrome_export_emits_counters_and_marks_only_when_present(self):
        t = Trace()
        t.add(ev("a", 0, 1))
        phases = [e["ph"] for e in t.to_chrome_trace()]
        assert "C" not in phases and "i" not in phases
        t.record_counter("c", 0.5, 1.0)
        t.mark("m", 0.5)
        phases = [e["ph"] for e in t.to_chrome_trace()]
        assert "C" in phases and "i" in phases

    def test_chrome_round_trip(self):
        t = Trace()
        t.record("k", "kernel", "compute", 0.0, 1.0, stream=2, nbytes=0)
        t.record("up", "h2d", "h2d", 0.5, 1.5, stream=2, nbytes=4096)
        t.record_counter("queue_depth:compute", 0.25, 1.0)
        t.mark("cache-hit", 0.75, region=0, slot=0)
        back = Trace.from_chrome_trace(t.to_chrome_trace())
        assert len(back) == 2
        assert back.lanes() == t.lanes()
        assert back.span() == pytest.approx(t.span())
        assert back.events[1].nbytes == 4096
        assert back.events[1].stream == 2
        assert back.counter_tracks == {"queue_depth:compute": [(0.25, 1.0)]}
        assert back.marks[0]["args"]["region"] == 0
