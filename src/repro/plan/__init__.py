"""repro.plan: access-set-driven automatic decomposition.

The declarative layer over :class:`~repro.core.library.TidaAcc`:
describe *what* runs (:class:`Program` — steps, sweeps, swaps,
reductions over named fields), let :func:`plan_program` derive *how*
(ghost widths, region/slot counts, eviction, prefetch, and the
write-back / halo-exchange elisions the access sets prove safe), and
execute with :meth:`TidaAcc.run_program`.

>>> from repro import Program, TidaAcc, heat_kernel
>>> prog = Program((64, 64))
>>> with prog.sweep(10):
...     prog.step(heat_kernel(2), ("u_new", "u_old"), params={"coef": 0.1})
...     prog.swap("u_old", "u_new")
>>> lib = TidaAcc()
>>> run = lib.run_program(prog)
>>> u = lib.gather("u_old")
"""

from .executor import ProgramRun, execute_program, halo_fill_bytes, writebacks_skipped
from .planner import (
    DEFAULT_REGION_CANDIDATES,
    FieldPlan,
    PlanReport,
    derive_halo,
    plan_program,
)
from .program import Loop, Program, Reduce, Scalar, ScalarRef, Step, Swap, ref

__all__ = [
    "Program",
    "Step",
    "Swap",
    "Reduce",
    "Scalar",
    "ScalarRef",
    "Loop",
    "ref",
    "plan_program",
    "PlanReport",
    "FieldPlan",
    "derive_halo",
    "DEFAULT_REGION_CANDIDATES",
    "execute_program",
    "ProgramRun",
    "halo_fill_bytes",
    "writebacks_skipped",
]
