"""repro.faults — deterministic fault injection and resilience policies.

Chaos-style validation of the transfer/compute overlap scheduler: a
seedable :class:`FaultPlan` makes the simulated runtime fail transfers,
launches, and allocations on a reproducible schedule, and a
:class:`RetryPolicy` tells the TiDA-acc layer how to recover (same-slot
re-issue with virtual-clock exponential backoff, graceful slot-pool
degradation under memory pressure).  Retry exhaustion raises
:class:`~repro.errors.FaultError` *after* flushing every surviving
device-resident region to the host — no data is silently lost.

Wiring: ``CudaRuntime(faults=plan)`` (or ``runtime.set_fault_plan``)
arms the plan; ``TidaAcc(retry=RetryPolicy(...))`` arms recovery;
``run_tida_heat(faults=..., retry=...)`` and the harness ``--faults``
knob expose both.  Everything is observable via ``faults.*`` counters
and ``fault-*`` trace decision marks.
"""

from ..errors import (
    CudaEccUncorrectableError,
    CudaTransferError,
    FaultError,
    FaultPlanError,
)
from .plan import ERROR_CLASSES, OPS, FaultPlan, FaultRule, Injection
from .retry import RetryPolicy

#: Errors the resilience layer treats as transient (retryable).  OOM is
#: deliberately absent: allocation failure is handled by slot-pool
#: degradation, not blind re-issue.
TRANSIENT_ERRORS = (CudaTransferError, CudaEccUncorrectableError)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "Injection",
    "RetryPolicy",
    "FaultError",
    "FaultPlanError",
    "TRANSIENT_ERRORS",
    "ERROR_CLASSES",
    "OPS",
    "CudaTransferError",
    "CudaEccUncorrectableError",
]
