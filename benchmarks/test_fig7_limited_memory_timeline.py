"""Figure 7: two-stream limited-memory pipeline timeline (§VI-C)."""

from repro.bench import figures


def test_fig7_limited_memory_timeline(run_once, results_dir):
    result = run_once(figures.figure7)
    print()
    print(result.table.format())
    print(result.gantt)
    result.table.save_json(results_dir / "fig7.json")
    (results_dir / "fig7.txt").write_text(result.gantt)

    # "data transfers are fully overlapped with computation on GPU"
    assert result.overlap_fraction > 0.95
    # streaming means real traffic on both engines
    h2d = result.table.row_by("lane", "h2d")[1]
    d2h = result.table.row_by("lane", "d2h")[1]
    compute = result.table.row_by("lane", "compute")[1]
    assert h2d > 0 and d2h > 0
    # and the kernel is the bottleneck (the §VI-C design point)
    assert compute > max(h2d, d2h)
