"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MachineSpec,
    PGI_MATH,
    k40m_pcie3,
)
from repro.cuda.runtime import CudaRuntime


@pytest.fixture
def machine() -> MachineSpec:
    """The paper's testbed."""
    return k40m_pcie3()


@pytest.fixture
def tiny_machine() -> MachineSpec:
    """A machine with round numbers, for hand-checkable timing tests.

    1 GB/s both link directions, zero latency; GPU: 1 GFlop/s, 1 GB/s,
    1 ms launches disabled (1 us); CPU api calls free-ish.
    """
    return MachineSpec(
        name="tiny",
        cpu=CpuSpec(
            name="tiny-cpu",
            dp_flops=1e9,
            mem_bandwidth=1e9,
            api_call_overhead=1e-9,
            ghost_index_rate=1e12,
        ),
        gpu=GpuSpec(
            name="tiny-gpu",
            memory_bytes=64_000_000,
            reserved_bytes=0,
            dp_flops=1e9,
            mem_bandwidth=1e9,
            kernel_launch_overhead=1e-6,
            copy_engines=2,
        ),
        link=LinkSpec(
            name="tiny-link",
            h2d_bandwidth=1e9,
            d2h_bandwidth=1e9,
            latency=0.0,
            pageable_bandwidth_factor=0.5,
        ),
        math=PGI_MATH,
    )


@pytest.fixture
def runtime(machine) -> CudaRuntime:
    """Functional runtime on the paper machine."""
    return CudaRuntime(machine, functional=True)


@pytest.fixture
def tiny_runtime(tiny_machine) -> CudaRuntime:
    return CudaRuntime(tiny_machine, functional=True)


def rand_array(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape)


# -- hypothesis strategies --------------------------------------------------
# Importable from test modules via ``import conftest`` (this directory is
# on sys.path once pytest loads the rootdir conftest).


def schedule_configs():
    """Strategy over the scheduling knobs that must never change results.

    Everything here only reorders work — eviction policy, prefetch
    depth, slot count, tile-visit order — so any draw must produce a
    byte-identical result.  Used by the differential property tests in
    ``tests/check/test_differential.py``.
    """
    from hypothesis import strategies as st

    return st.fixed_dictionaries(
        {
            "eviction": st.sampled_from(["lru", "lookahead", "modulo"]),
            "prefetch_depth": st.sampled_from([None, 0, 1, 2]),
            "order_seed": st.one_of(
                st.none(), st.integers(min_value=0, max_value=2**16)
            ),
            "n_slots": st.integers(min_value=2, max_value=4),
        }
    )


def initial_fields(shape):
    """Strategy over initial conditions: seeded random scalar fields."""
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=2**16).map(
        lambda seed: rand_array(shape, seed=seed)
    )
