"""Device memory: buffers and the allocation pool.

The pool mirrors ``cudaMalloc``/``cudaFree``/``cudaMemGetInfo`` semantics:
a fixed capacity (device memory minus the runtime's own reservation),
exact accounting, and ``cudaErrorMemoryAllocation`` when exhausted.  The
paper's TileAcc sizes its slot list by querying ``cudaMemGetInfo``
(§IV-B.1), so the accounting here directly drives the limited-memory
experiments (Figs. 7 and 8).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..errors import (
    CudaInvalidValueError,
    CudaMemoryAllocationError,
    TimingModeError,
)
from .hostmem import _normalize_shape


class DeviceBuffer:
    """A device-side allocation (one ``cudaMalloc`` result).

    In functional mode it owns a numpy array standing in for device
    memory; kernels execute against these arrays so the whole pipeline's
    numerics can be checked against a CPU reference.
    """

    __slots__ = ("shape", "dtype", "functional", "nbytes", "_array", "_freed",
                 "label", "pool")

    def __init__(
        self,
        pool: "DeviceMemoryPool",
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        functional: bool = True,
        label: str = "",
    ) -> None:
        self.pool = pool
        self.shape = _normalize_shape(shape)
        self.dtype = np.dtype(dtype)
        self.functional = bool(functional)
        self.label = label
        # cached: read on every transfer-time estimate and pool accounting op
        self.nbytes = self.dtype.itemsize * math.prod(self.shape)
        self._freed = False
        self._array = np.zeros(self.shape, dtype=self.dtype) if self.functional else None

    @property
    def freed(self) -> bool:
        return self._freed

    @property
    def array(self) -> np.ndarray:
        if self._freed:
            raise CudaInvalidValueError(f"device buffer {self.label or id(self)} used after free")
        if self._array is None:
            raise TimingModeError(
                f"device buffer {self.label or id(self)} has no backing array "
                '(timing-only run, mode="timing"); re-run with '
                'mode="functional" to read values back'
            )
        return self._array

    def _mark_freed(self) -> None:
        self._freed = True
        self._array = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceBuffer({self.label or '?'}, shape={self.shape}, nbytes={self.nbytes})"


class DeviceMemoryPool:
    """Exact-accounting allocator for the simulated device memory."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise CudaInvalidValueError(f"device capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._live: set[int] = set()

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def allocate(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        functional: bool = True,
        label: str = "",
    ) -> DeviceBuffer:
        buf = DeviceBuffer(self, shape, dtype, functional=functional, label=label)
        if buf.nbytes > self.free_bytes:
            raise CudaMemoryAllocationError(
                f"out of device memory allocating {buf.nbytes} bytes "
                f"({self.free_bytes} of {self.capacity_bytes} free)"
            )
        self._used += buf.nbytes
        self._live.add(id(buf))
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if id(buf) not in self._live:
            raise CudaInvalidValueError(
                "freeing a device buffer not owned by this pool (or already freed)"
            )
        self._live.discard(id(buf))
        self._used -= buf.nbytes
        buf._mark_freed()

    def mem_get_info(self) -> tuple[int, int]:
        """(free, total) as ``cudaMemGetInfo`` reports them."""
        return self.free_bytes, self.capacity_bytes
