"""The telemetry bus: virtual-clock sampling of live runtime metrics.

The bus subscribes to the runtime's :class:`~repro.sim.engine.HostClock`
and, every time virtual time crosses a ``sample_interval`` boundary,
folds the current counter totals into one :class:`TelemetrySample` with
window-derived rates (bytes/s per link direction, stall fraction, cache
hit rate, overlap efficiency).  Samples fan out to pluggable
subscribers (watchdog, flight recorder, user callbacks) and optionally
append to a JSONL session log that ``python -m repro.obs.watch`` tails.

Design constraints, all load-bearing:

* **virtual-clock driven** — sampling happens inside clock advancement,
  never from wall time, so the whole pipeline is byte-reproducible;
* **zero observable overhead** — the bus only *reads* the registry,
  trace, and engines; it never writes a metric or trace event, so a
  monitored run produces byte-identical metrics/trace artifacts to an
  unmonitored one (asserted in tests);
* **bounded cost** — exactly one sample per crossed interval boundary,
  no matter how far one blocking sync jumps time (a jump over k
  boundaries back-fills k samples, so detector windows see a uniform
  cadence), and the window accounting is O(watched counters).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..metrics import MetricsRegistry, ObsError

#: Cumulative counter series sampled into every ``TelemetrySample``.
#: Values are (total name -> registry counter name); prefixed entries
#: (trailing dot) are summed across the instrument family.
WATCHED_COUNTERS: dict[str, str] = {
    "h2d_bytes": "cuda.h2d_bytes",
    "d2h_bytes": "cuda.d2h_bytes",
    "h2d_copies": "cuda.h2d_copies",
    "d2h_copies": "cuda.d2h_copies",
    "stall_seconds": "cuda.stall_seconds",
    "kernel_launches": "cuda.kernel_launches",
    "api_calls": "cuda.api_calls",
    "faults_injected": "faults.injected",
    "retries": "faults.retries",
    "recovered": "faults.recovered",
    "hazards": "check.hazards",
    "cache_hits": "cache.hits.",
    "cache_misses": "cache.misses.",
    "cache_evictions": "cache.evictions.",
    "prefetch_issued": "cache.prefetch_issued.",
}

#: Trace decision marks counted per window (cumulative in totals).
WATCHED_MARKS: tuple[str, ...] = ("iteration", "fault-inject", "fault-retry", "hazard")


def _merge_intervals(ivs: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not ivs:
        return ivs
    ivs.sort()
    merged = [ivs[0]]
    for lo, hi in ivs[1:]:
        if lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


class TelemetrySubscriber:
    """Base class for bus subscribers; override any subset of hooks."""

    def bind(self, bus: "TelemetryBus") -> None:
        """Called once when added to a bus."""

    def on_sample(self, sample: "TelemetrySample") -> None:
        """Called for every emitted sample, in subscription order."""

    def on_alert(self, alert: Any) -> None:
        """Called when any subscriber publishes an alert via the bus."""

    def on_incident(self, trigger: dict[str, Any]) -> None:
        """Called when the runtime reports a fault/hazard incident."""

    def on_close(self, bus: "TelemetryBus") -> None:
        """Called when the session ends (after the final sample)."""


@dataclass(frozen=True)
class TelemetrySample:
    """One sampled window of a monitored run.

    ``totals`` are cumulative counter values at the sample boundary;
    ``deltas`` are the movement since the previous sample.  Rate fields
    that have no denominator in the window (no cache accesses, no
    overlap opportunity) are ``None`` rather than 0 so detectors can
    distinguish "healthy" from "no signal".
    """

    seq: int
    t: float
    dt: float
    totals: dict[str, float]
    deltas: dict[str, float]
    h2d_bytes_per_s: float
    d2h_bytes_per_s: float
    stall_fraction: float
    compute_fraction: float
    transfer_fraction: float
    cache_hit_rate: float | None
    overlap_efficiency: float | None
    queue_depth: float
    final: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "dt": self.dt,
            "totals": dict(sorted(self.totals.items())),
            "deltas": dict(sorted(self.deltas.items())),
            "h2d_bytes_per_s": self.h2d_bytes_per_s,
            "d2h_bytes_per_s": self.d2h_bytes_per_s,
            "stall_fraction": self.stall_fraction,
            "compute_fraction": self.compute_fraction,
            "transfer_fraction": self.transfer_fraction,
            "cache_hit_rate": self.cache_hit_rate,
            "overlap_efficiency": self.overlap_efficiency,
            "queue_depth": self.queue_depth,
            "final": self.final,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TelemetrySample":
        return cls(
            seq=int(d["seq"]),
            t=float(d["t"]),
            dt=float(d["dt"]),
            totals={k: float(v) for k, v in d.get("totals", {}).items()},
            deltas={k: float(v) for k, v in d.get("deltas", {}).items()},
            h2d_bytes_per_s=float(d.get("h2d_bytes_per_s", 0.0)),
            d2h_bytes_per_s=float(d.get("d2h_bytes_per_s", 0.0)),
            stall_fraction=float(d.get("stall_fraction", 0.0)),
            compute_fraction=float(d.get("compute_fraction", 0.0)),
            transfer_fraction=float(d.get("transfer_fraction", 0.0)),
            cache_hit_rate=(None if d.get("cache_hit_rate") is None
                            else float(d["cache_hit_rate"])),
            overlap_efficiency=(None if d.get("overlap_efficiency") is None
                                else float(d["overlap_efficiency"])),
            queue_depth=float(d.get("queue_depth", 0.0)),
            final=bool(d.get("final", False)),
        )


class TelemetryBus:
    """Samples a runtime's registry on a virtual-clock cadence.

    Parameters
    ----------
    sample_interval:
        Virtual seconds between sample boundaries.  One sample is
        emitted per crossed boundary (an advancement jumping several
        boundaries back-fills one sample per boundary), each window
        covering exactly ``sample_interval`` of virtual time.
    jsonl:
        Optional path; every sample/alert/incident is appended as one
        JSON line (sorted keys, so sessions are byte-diffable).
    keep_samples:
        Retain emitted samples on ``bus.samples`` (default).  Long
        services can turn this off and rely on subscribers instead.
    enabled:
        ``False`` builds an inert bus: attach/close are no-ops and the
        clock is never subscribed, so the run is bit-for-bit identical
        to an unmonitored one.
    """

    def __init__(
        self,
        sample_interval: float = 1e-3,
        *,
        jsonl: str | Path | None = None,
        keep_samples: bool = True,
        enabled: bool = True,
    ) -> None:
        if sample_interval <= 0:
            raise ObsError(f"sample_interval must be positive, got {sample_interval!r}")
        self.sample_interval = float(sample_interval)
        self.enabled = bool(enabled)
        self.keep_samples = bool(keep_samples)
        self.samples: list[TelemetrySample] = []
        self.alerts: list[Any] = []
        self.incidents: list[dict[str, Any]] = []
        self._subscribers: list[TelemetrySubscriber] = []
        self._jsonl_path = Path(jsonl) if jsonl is not None else None
        self._jsonl_file = None
        self._clock = None
        self._metrics: MetricsRegistry | None = None
        self._trace = None
        self._checker = None
        self._compute_engines: list[Any] = []
        self._transfer_engines: list[Any] = []
        self._last_k = 0
        self._last_t = 0.0
        self._last_totals: dict[str, float] = {}
        self._mark_cursor = 0
        self._mark_totals: dict[str, float] = {m: 0.0 for m in WATCHED_MARKS}
        self._seq = 0
        self._in_sample = False
        self._closed = False

    # -- wiring -------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._clock is not None

    def add_subscriber(self, subscriber: TelemetrySubscriber) -> TelemetrySubscriber:
        if subscriber not in self._subscribers:
            self._subscribers.append(subscriber)
            subscriber.bind(self)
        return subscriber

    def attach(self, target: Any) -> None:
        """Bind the bus to a runtime or multi-GPU group.

        ``target`` needs ``clock``/``metrics``/``trace`` plus either
        engines (``compute_engine``/``h2d_engine``/``d2h_engine``) or a
        ``devices`` sequence of runtimes.  Attaching twice to the same
        shared clock is a no-op (the multi-GPU group and its devices
        share one clock); attaching to a second clock is an error.
        """
        if not self.enabled:
            return
        if self._clock is not None:
            if self._clock is target.clock:
                return
            raise ObsError("TelemetryBus is already attached to another runtime")
        if self._closed:
            raise ObsError("cannot attach a closed TelemetryBus")
        self._clock = target.clock
        self._metrics = target.metrics
        self._trace = target.trace
        self._checker = getattr(target, "checker", None)
        devices = getattr(target, "devices", None) or (target,)
        seen: dict[int, Any] = {}
        for dev in devices:
            for eng, bucket in (
                (dev.compute_engine, self._compute_engines),
                (dev.h2d_engine, self._transfer_engines),
                (dev.d2h_engine, self._transfer_engines),
            ):
                if id(eng) not in seen:
                    seen[id(eng)] = eng
                    bucket.append(eng)
        self._last_t = self._clock.now
        self._last_k = int(math.floor(self._clock.now / self.sample_interval + 1e-12))
        self._last_totals = self._collect_totals()
        cb, tb, ob, ab = self._activity(self._clock.now)
        self._last_totals["compute_busy"] = cb
        self._last_totals["transfer_busy"] = tb
        self._last_totals["overlap_seconds"] = ob
        self._last_totals["active_seconds"] = ab
        self._write_jsonl({
            "kind": "session",
            "schema": "repro-telemetry/1",
            "sample_interval": self.sample_interval,
            "t0": self._clock.now,
        })
        self._clock.subscribe(self._on_clock)

    def detach(self) -> None:
        if self._clock is not None:
            self._clock.unsubscribe(self._on_clock)
            self._clock = None

    # -- read-only views for subscribers ------------------------------------

    @property
    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    @property
    def trace(self):
        return self._trace

    @property
    def metrics(self) -> MetricsRegistry | None:
        return self._metrics

    @property
    def checker(self):
        return self._checker

    def engine_state(self) -> list[dict[str, Any]]:
        """Current tail/busy/op-count of every attached engine."""
        rows = []
        for kind, engines in (("compute", self._compute_engines),
                              ("transfer", self._transfer_engines)):
            for eng in engines:
                rows.append({
                    "name": eng.name,
                    "kind": kind,
                    "tail": eng.tail,
                    "busy_time": eng.busy_time,
                    "op_count": eng.op_count,
                })
        return rows

    # -- sampling -----------------------------------------------------------

    def _collect_totals(self) -> dict[str, float]:
        m = self._metrics
        totals: dict[str, float] = {}
        for key, name in WATCHED_COUNTERS.items():
            if name.endswith("."):
                totals[key] = m.sum_counters(name)
            else:
                totals[key] = m.value(name)
        if self._trace is not None:
            new = self._trace.marks_since(self._mark_cursor)
            if new:
                self._mark_cursor += len(new)
                for mark in new:
                    name = mark["name"]
                    if name in self._mark_totals:
                        self._mark_totals[name] += 1.0
        for name, count in self._mark_totals.items():
            totals[f"marks.{name}"] = count
        return totals

    def _activity(self, t: float) -> tuple[float, float, float, float]:
        """Cumulative (compute_busy, transfer_busy, overlap, active)
        seconds, clipped to virtual time ``t``.

        Engine ``busy_time`` counters charge an operation's full duration
        at submission — including work scheduled beyond ``t`` — and the
        ``cuda.stall_seconds`` counter charges a blocking sync in full at
        the instant it begins, so window fractions derived from either
        overshoot or clump.  This reads the trace instead: kernel spans
        vs. h2d/d2h spans vs. host-compute spans, each clipped to ``t``,
        interval-merged, and (for overlap) intersected — exact per-window
        attribution no matter how far one advancement jumped.

        ``active`` is the union of engine *and* host-compute activity;
        ``t - active`` is dead time — the host blocked or backing off
        while nothing executes — which is what the stall-spike detector
        watches (a blocking sync over a busy engine is healthy draining,
        not a stall).
        """
        if self._trace is None:
            return (0.0, 0.0, 0.0, 0.0)
        comp: list[tuple[float, float]] = []
        trans: list[tuple[float, float]] = []
        host: list[tuple[float, float]] = []
        for e in self._trace.events:
            if e.start >= t:
                continue
            end = min(e.end, t)
            if end <= e.start:
                continue
            if e.category == "kernel":
                comp.append((e.start, end))
            elif e.category in ("h2d", "d2h"):
                trans.append((e.start, end))
            elif e.category == "host":
                host.append((e.start, end))
        comp = _merge_intervals(comp)
        trans = _merge_intervals(trans)
        active = _merge_intervals(comp + trans + _merge_intervals(host))
        overlap = 0.0
        i = j = 0
        while i < len(comp) and j < len(trans):
            lo = max(comp[i][0], trans[j][0])
            hi = min(comp[i][1], trans[j][1])
            if hi > lo:
                overlap += hi - lo
            if comp[i][1] <= trans[j][1]:
                i += 1
            else:
                j += 1
        return (
            sum(b - a for a, b in comp),
            sum(b - a for a, b in trans),
            overlap,
            sum(b - a for a, b in active),
        )

    def _on_clock(self, now: float) -> None:
        if self._in_sample or self._closed:
            return
        k = int(math.floor(now / self.sample_interval + 1e-12))
        # one sample per crossed boundary: a blocking sync that jumps far
        # ahead still yields fixed-width windows, whose engine activity is
        # resolved retroactively from the trace (counters only move at
        # host API calls, so intermediate windows carry zero deltas)
        while self._last_k < k:
            self._last_k += 1
            self._emit(self._last_k * self.sample_interval, final=False)

    def _emit(self, t: float, *, final: bool) -> None:
        self._in_sample = True
        try:
            totals = self._collect_totals()
            cb, tb, ob, ab = self._activity(t)
            totals["compute_busy"] = cb
            totals["transfer_busy"] = tb
            totals["overlap_seconds"] = ob
            totals["active_seconds"] = ab
            dt = t - self._last_t
            if dt <= 0:
                return
            deltas = {
                key: totals.get(key, 0.0) - self._last_totals.get(key, 0.0)
                for key in totals
            }
            cd = deltas.get("compute_busy", 0.0)
            td = deltas.get("transfer_busy", 0.0)
            od = deltas.get("overlap_seconds", 0.0)
            accesses = deltas.get("cache_hits", 0.0) + deltas.get("cache_misses", 0.0)
            hit_rate = deltas.get("cache_hits", 0.0) / accesses if accesses else None
            shorter = min(cd, td)
            if shorter > 1e-12:
                overlap_eff = min(max(od, 0.0) / shorter, 1.0)
            else:
                overlap_eff = None
            queue_depth = (
                self._metrics.max_gauge("cuda.", ".queue_depth")
                if self._metrics is not None else 0.0
            )
            sample = TelemetrySample(
                seq=self._seq,
                t=t,
                dt=dt,
                totals=totals,
                deltas=deltas,
                h2d_bytes_per_s=deltas.get("h2d_bytes", 0.0) / dt,
                d2h_bytes_per_s=deltas.get("d2h_bytes", 0.0) / dt,
                stall_fraction=min(
                    max(dt - deltas.get("active_seconds", 0.0), 0.0) / dt, 1.0
                ),
                compute_fraction=min(cd / dt, 1.0),
                transfer_fraction=min(td / dt, 1.0),
                cache_hit_rate=hit_rate,
                overlap_efficiency=overlap_eff,
                queue_depth=queue_depth,
                final=final,
            )
            self._seq += 1
            self._last_t = t
            self._last_totals = totals
            if self.keep_samples:
                self.samples.append(sample)
            self._write_jsonl({"kind": "sample", **sample.to_dict()})
            for sub in self._subscribers:
                sub.on_sample(sample)
        finally:
            self._in_sample = False

    # -- alerts and incidents ----------------------------------------------

    def publish_alert(self, alert: Any) -> None:
        """Record an alert and fan it out to every subscriber."""
        self.alerts.append(alert)
        payload = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
        self._write_jsonl({"kind": "alert", **payload})
        for sub in self._subscribers:
            sub.on_alert(alert)

    def notify_incident(
        self, kind: str, *, error: Exception | None = None,
        now: float | None = None, **info: Any,
    ) -> dict[str, Any]:
        """Report a hard failure (FaultError, strict HazardError, ...).

        Builds a structured trigger record, logs it, and fans it out so
        the flight recorder can dump a self-contained incident file.
        """
        trigger: dict[str, Any] = {
            "kind": kind,
            "t": (now if now is not None
                  else (self._clock.now if self._clock is not None else 0.0)),
            "error": type(error).__name__ if error is not None else None,
            "message": str(error) if error is not None else info.pop("message", ""),
        }
        trigger.update(info)
        self.incidents.append(trigger)
        # nested: the trigger's own "kind" (fault/hazard/...) must not
        # clobber the record kind
        self._write_jsonl({"kind": "incident", "trigger": trigger})
        for sub in self._subscribers:
            sub.on_incident(trigger)
        return trigger

    # -- health and lifecycle ----------------------------------------------

    def health(self) -> dict[str, Any]:
        """One poll-friendly dict summarizing the monitored run so far."""
        severities = {"info": 0, "warning": 0, "critical": 0}
        for alert in self.alerts:
            sev = getattr(alert, "severity", None) or alert.get("severity", "info")
            severities[sev] = severities.get(sev, 0) + 1
        if self.incidents or severities["critical"]:
            status = "critical"
        elif severities["warning"]:
            status = "degraded"
        elif not self._seq:
            status = "idle"
        else:
            status = "ok"
        last = self.samples[-1] if self.samples else None
        return {
            "status": status,
            "monitored": self.enabled and self.attached,
            # after close() the clock is detached; the last sampled time
            # is still the honest "monitored up to" answer
            "now": self._clock.now if self._clock is not None else self._last_t,
            "sample_interval": self.sample_interval,
            "samples": self._seq,
            "alerts": severities,
            "incidents": len(self.incidents),
            "last_sample": last.to_dict() if last is not None else None,
        }

    def close(self) -> None:
        """Emit a final partial-window sample and end the session log."""
        if self._closed or not self.enabled:
            return
        if self._clock is not None and self._clock.now > self._last_t:
            self._emit(self._clock.now, final=True)
        self._closed = True
        self.detach()
        for sub in self._subscribers:
            sub.on_close(self)
        if self._jsonl_file is not None:
            self._jsonl_file.close()
            self._jsonl_file = None

    # -- persistence --------------------------------------------------------

    def _write_jsonl(self, record: dict[str, Any]) -> None:
        if self._jsonl_path is None:
            return
        if self._jsonl_file is None:
            self._jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            self._jsonl_file = self._jsonl_path.open("w")
        self._jsonl_file.write(json.dumps(record, sort_keys=True) + "\n")
        self._jsonl_file.flush()


def read_session(path: str | Path) -> dict[str, list[dict[str, Any]]]:
    """Parse a telemetry JSONL session into lists by record kind."""
    out: dict[str, list[dict[str, Any]]] = {
        "session": [], "sample": [], "alert": [], "incident": [],
    }
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        out.setdefault(record.get("kind", "other"), []).append(record)
    return out
