"""TiDA: the tiling library the paper extends (Unat et al. [12]).

Provides the three abstractions of §IV-A:

* **regions** — physically separated partitions of the data, each with
  its own allocation (and ghost cells);
* **tiles** — logical partitions of a region's iteration space;
* **tile iterator** — traversal over tiles/regions, the engine on which
  TiDA-acc hangs GPU execution.

Plus the supporting machinery: integer box algebra, regular domain
decomposition, the ``tileArray`` container, host-side ghost-cell
exchange and domain boundary conditions.
"""

from .box import Box
from .decomposition import Decomposition
from .region import Region
from .tile import Tile
from .tile_array import TileArray
from .tile_iterator import TileIterator
from .boundary import BoundaryCondition, Dirichlet, Neumann, Periodic

__all__ = [
    "Box",
    "Decomposition",
    "Region",
    "Tile",
    "TileArray",
    "TileIterator",
    "BoundaryCondition",
    "Dirichlet",
    "Neumann",
    "Periodic",
]
