"""Device memory slots and slot allocation (§IV-B.1).

TileAcc keeps a list of device memory pointers, each with a CUDA stream
assigned to it, and the cache list (:attr:`DeviceSlot.bound`) records
which region's data currently occupies each slot (-1 when empty) — the
§IV-B.4 caching structure.

The paper fixes the mapping at ``region_id % n_slots`` (direct-mapped):
two regions that alias the same slot evict each other even while other
slots sit empty.  Here the mapping is *associative*: any region can
occupy any free slot, and a pluggable :class:`EvictionPolicy` decides
which occupant to displace when nothing is free.

Policies:

* ``"lru"`` (default) — evict the least-recently-accessed occupant;
* ``"lookahead"`` — Belady-style: given the traversal schedule a
  :class:`~repro.tida.tile_iterator.TileIterator` knows, evict the
  occupant whose next use lies farthest in the future (never-used-again
  occupants first, most-recently-used among them — the optimal
  tie-break for cyclic sweeps);
* ``"modulo"`` — the paper's fixed ``rid % n_slots`` mapping, kept for
  fidelity experiments.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..cuda.stream import Stream
from ..errors import TileAccError
from ..sim.device import DeviceBuffer

#: Region-location markers for the last-accessed-address-space cache (§III).
HOST = "host"
DEVICE = "device"

#: The cache-list value meaning "no region's data is in this slot" (§IV-B.4).
EMPTY = -1


class DeviceSlot:
    """One device memory pointer + its assigned CUDA stream."""

    __slots__ = ("index", "queue_id", "stream", "buffer", "bound")

    def __init__(self, index: int, queue_id: int, stream: Stream) -> None:
        self.index = index
        self.queue_id = queue_id      # OpenACC async value backing `stream`
        self.stream = stream
        self.buffer: DeviceBuffer | None = None
        self.bound: int = EMPTY       # region id occupying the slot, or EMPTY

    @property
    def is_empty(self) -> bool:
        return self.bound == EMPTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceSlot({self.index}, bound={self.bound}, queue={self.queue_id})"


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------

class EvictionPolicy:
    """Victim selection for an associative slot pool.

    The pool tells the policy about accesses (:meth:`note_access`) and —
    for schedule-aware policies — about the iterator's remaining
    traversal order (:meth:`set_schedule`).  :meth:`choose_victim` picks
    one occupant region id out of ``candidates`` to displace;
    :meth:`prefetch_victim` is the conservative variant used when the
    displacement is speculative (a prefetch, not a demand miss) and may
    return ``None`` to decline.
    """

    name = "base"

    def note_access(self, rid: int) -> None:  # pragma: no cover - trivial default
        pass

    def set_schedule(self, rids: Sequence[int]) -> None:  # pragma: no cover
        pass

    def choose_victim(self, candidates: Sequence[int]) -> int:
        raise NotImplementedError

    def prefetch_victim(self, candidates: Sequence[int], rid: int) -> int | None:
        """Occupant a *prefetch* of ``rid`` may displace (``None``: don't)."""
        return None


class LruPolicy(EvictionPolicy):
    """Least-recently-used: evict the occupant whose last access is oldest."""

    name = "lru"

    def __init__(self) -> None:
        self._tick = 0
        self._last: dict[int, int] = {}

    def note_access(self, rid: int) -> None:
        self._tick += 1
        self._last[rid] = self._tick

    def choose_victim(self, candidates: Sequence[int]) -> int:
        return min(candidates, key=lambda rid: self._last.get(rid, -1))


class LookaheadPolicy(EvictionPolicy):
    """Belady-style eviction, optimal given a known traversal order.

    :meth:`set_schedule` receives the iterator's remaining region order
    (current region first) before every placement decision, so
    ``next use`` is exact within the current sweep.  Occupants absent
    from the schedule count as never-used-again and go first; among
    those, the *most* recently used is evicted — for a cyclic sweep the
    least-recently-used occupant is the one coming back soonest, so MRU
    is the optimal tie-break.
    """

    name = "lookahead"

    def __init__(self) -> None:
        self._tick = 0
        self._last: dict[int, int] = {}
        self._next: dict[int, int] = {}

    def note_access(self, rid: int) -> None:
        self._tick += 1
        self._last[rid] = self._tick

    def set_schedule(self, rids: Sequence[int]) -> None:
        nxt: dict[int, int] = {}
        for i, rid in enumerate(rids):
            if rid not in nxt:
                nxt[rid] = i
        self._next = nxt

    def _next_use(self, rid: int) -> float:
        return self._next.get(rid, float("inf"))

    def choose_victim(self, candidates: Sequence[int]) -> int:
        return max(
            candidates,
            key=lambda rid: (self._next_use(rid), self._last.get(rid, -1)),
        )

    def prefetch_victim(self, candidates: Sequence[int], rid: int) -> int | None:
        victim = self.choose_victim(candidates)
        # only displace data that is needed strictly later than the
        # prefetched region (or never again); otherwise the prefetch
        # would thrash with demand accesses
        if self._next_use(victim) > self._next_use(rid):
            return victim
        return None


class ModuloPolicy(EvictionPolicy):
    """The paper's fixed direct-mapped ``rid % n_slots`` assignment."""

    name = "modulo"

    def choose_victim(self, candidates: Sequence[int]) -> int:  # pragma: no cover
        # never consulted: SlotPool.place short-circuits for modulo
        return candidates[0]


_POLICIES: dict[str, type[EvictionPolicy]] = {
    "lru": LruPolicy,
    "lookahead": LookaheadPolicy,
    "modulo": ModuloPolicy,
}


def make_policy(policy: str | EvictionPolicy) -> EvictionPolicy:
    """Instantiate an eviction policy from its name (or pass one through)."""
    if isinstance(policy, EvictionPolicy):
        return policy
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise TileAccError(
            f"unknown eviction policy {policy!r}; have {sorted(_POLICIES)}"
        ) from None
    return cls()


# ---------------------------------------------------------------------------
# The associative pool
# ---------------------------------------------------------------------------

class SlotPool:
    """Associative region→slot allocation over a fixed slot list.

    ``slot.bound`` stays the single source of truth for occupancy (the
    paper's cache list); the pool only *decides* placements.  A slot is
    *free* for placement when it is empty or *stale* — bound to a region
    whose current data lives on the host, so displacing it moves no
    data.  ``is_resident(rid)`` supplies that distinction.
    """

    def __init__(
        self,
        slots: Sequence[DeviceSlot],
        policy: EvictionPolicy,
        is_resident: Callable[[int], bool],
    ) -> None:
        self.slots = list(slots)
        self.policy = policy
        self._is_resident = is_resident

    def slot_of(self, rid: int) -> DeviceSlot | None:
        """The slot currently bound to ``rid``, or ``None``."""
        for slot in self.slots:
            if slot.bound == rid:
                return slot
        return None

    def _free_slot(self, rid: int) -> DeviceSlot | None:
        """Bound-to-rid, empty, or stale slot — a placement moving no data."""
        stale = None
        for slot in self.slots:
            if slot.bound == rid:
                return slot
            if slot.bound == EMPTY:
                return slot
            if stale is None and not self._is_resident(slot.bound):
                stale = slot
        return stale

    def place(self, rid: int, *, protect: Iterable[int] = ()) -> DeviceSlot:
        """The slot a demand request for ``rid`` should use.

        Preference order: the slot already bound to ``rid``, an empty
        slot, a stale slot, then the policy's victim.  ``protect`` lists
        region ids that should not be displaced (in-flight prefetches);
        when every occupant is protected the protection is waived —
        demand placement must always succeed.
        """
        if isinstance(self.policy, ModuloPolicy):
            return self.slots[rid % len(self.slots)]
        slot = self._free_slot(rid)
        if slot is not None:
            return slot
        protected = set(protect)
        occupants = [s.bound for s in self.slots]
        candidates = [r for r in occupants if r not in protected] or occupants
        victim = self.policy.choose_victim(candidates)
        slot = self.slot_of(victim)
        assert slot is not None
        return slot

    def place_for_prefetch(
        self, rid: int, *, protect: Iterable[int] = ()
    ) -> DeviceSlot | None:
        """The slot a *speculative* upload of ``rid`` may use, or ``None``.

        Free (empty/stale) slots are always fair game; displacing live
        data is delegated to the policy's :meth:`prefetch_victim`, which
        only schedule-aware policies implement.  Under the modulo policy
        the region's home slot is used only when free — displacing its
        occupant early would thrash with the demand stream.
        """
        protected = set(protect)
        if isinstance(self.policy, ModuloPolicy):
            slot = self.slots[rid % len(self.slots)]
            if slot.bound in (EMPTY, rid) or (
                slot.bound not in protected and not self._is_resident(slot.bound)
            ):
                return slot
            return None
        slot = self._free_slot(rid)
        if slot is not None and slot.bound in (EMPTY, rid):
            return slot
        if slot is not None and slot.bound not in protected:
            return slot
        candidates = [
            s.bound for s in self.slots
            if s.bound not in protected and self._is_resident(s.bound)
        ]
        if not candidates:
            return None
        victim = self.policy.prefetch_victim(candidates, rid)
        return self.slot_of(victim) if victim is not None else None


# ---------------------------------------------------------------------------
# Multi-tenant slot partitioning (repro.service QoS)
# ---------------------------------------------------------------------------

class SlotPartitioner:
    """Fair-share partitioning of a device slot budget across tenants.

    The multi-tenant service hands each admitted job a private
    :class:`SlotPool`, so isolation is structural; what tenants *compete*
    for is the total number of slots the device can back.  The
    partitioner turns fair-share weights into per-tenant slot quotas
    (largest-remainder apportionment, every tenant floored at one slot)
    and tracks live occupancy so admission control can cap a job's plan
    at its tenant's remaining quota and pick shedding victims when a
    priority tenant needs room.

    Occupancy accounting is in *slots*, the same unit
    :class:`~repro.core.tile_acc.TileAcc` sizes its pool in; byte budgets
    stay with admission control, which knows the per-job slot size.
    """

    def __init__(self, total_slots: int) -> None:
        if total_slots < 1:
            raise TileAccError(f"need at least one slot to partition, got {total_slots}")
        self.total_slots = int(total_slots)
        self._weights: dict[str, float] = {}
        self._priority: dict[str, bool] = {}
        self._held: dict[str, int] = {}
        self._quota: dict[str, int] = {}

    def add_tenant(self, tenant: str, weight: float = 1.0, *, priority: bool = False) -> None:
        if weight <= 0:
            raise TileAccError(f"tenant weight must be > 0, got {weight!r}")
        self._weights[tenant] = float(weight)
        self._priority[tenant] = bool(priority)
        self._held.setdefault(tenant, 0)
        self._recompute()

    def _recompute(self) -> None:
        """Largest-remainder apportionment of ``total_slots`` by weight.

        Every tenant gets at least one slot (a zero quota would starve it
        structurally, which QoS must never do); the remainder after the
        floor-of-share pass goes to the largest fractional parts, ties
        broken by registration order for determinism.
        """
        tenants = list(self._weights)
        if not tenants:
            return
        total_w = sum(self._weights.values())
        shares = {
            t: self.total_slots * self._weights[t] / total_w for t in tenants
        }
        quota = {t: max(1, int(shares[t])) for t in tenants}
        spare = self.total_slots - sum(quota.values())
        if spare > 0:
            by_remainder = sorted(
                tenants,
                key=lambda t: (-(shares[t] - int(shares[t])), tenants.index(t)),
            )
            for t in by_remainder[:spare]:
                quota[t] += 1
        self._quota = quota

    def tenants(self) -> tuple[str, ...]:
        return tuple(self._weights)

    def weight(self, tenant: str) -> float:
        return self._weights[tenant]

    def is_priority(self, tenant: str) -> bool:
        return self._priority[tenant]

    def quota(self, tenant: str) -> int:
        """This tenant's fair share of the slot budget, in slots."""
        return self._quota[tenant]

    def held(self, tenant: str) -> int:
        """Slots the tenant's admitted jobs currently occupy."""
        return self._held[tenant]

    def acquire(self, tenant: str, n_slots: int) -> None:
        if tenant not in self._weights:
            raise TileAccError(f"unknown tenant {tenant!r}")
        if n_slots < 0:
            raise TileAccError(f"cannot acquire {n_slots} slots")
        self._held[tenant] += n_slots

    def release(self, tenant: str, n_slots: int) -> None:
        if self._held.get(tenant, 0) < n_slots:
            raise TileAccError(
                f"tenant {tenant!r} releasing {n_slots} slots but holds "
                f"{self._held.get(tenant, 0)}"
            )
        self._held[tenant] -= n_slots

    def over_quota(self, tenant: str) -> int:
        """Slots held beyond quota (0 when at or under fair share)."""
        return max(0, self._held[tenant] - self._quota[tenant])

    def headroom(self, tenant: str) -> int:
        """Slots the tenant may still claim inside its quota (>= 0)."""
        return max(0, self._quota[tenant] - self._held[tenant])

    def shed_candidates(self, need: int, *, protect: Iterable[str] = ()) -> list[str]:
        """Best-effort tenants to shed slots from, most over-quota first.

        Returns one entry per slot to shed (a tenant may repeat) until
        ``need`` slots are covered or no best-effort tenant holds more
        than one slot.  Priority tenants and ``protect`` members are
        never shed.
        """
        protected = set(protect)
        held = dict(self._held)
        order: list[str] = []
        for _ in range(max(0, need)):
            victims = [
                t for t in self._weights
                if not self._priority[t] and t not in protected and held[t] > 1
            ]
            if not victims:
                break
            victim = max(
                victims,
                key=lambda t: (
                    held[t] - self._quota[t],
                    held[t],
                    -list(self._weights).index(t),
                ),
            )
            held[victim] -= 1
            order.append(victim)
        return order
