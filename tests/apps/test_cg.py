"""Tiled conjugate-gradient solver tests."""

import numpy as np
import pytest

from repro.apps import TiledCG
from repro.apps.cg import assemble_laplacian_dense, laplacian_kernel
from repro.errors import ReproError


class TestOperator:
    def test_dense_assembly_spd(self):
        A = assemble_laplacian_dense((4, 4))
        np.testing.assert_array_equal(A, A.T)
        eigvals = np.linalg.eigvalsh(A)
        assert eigvals.min() > 0

    def test_matvec_matches_dense(self, machine):
        """The tiled stencil matvec equals the dense operator."""
        from repro.core.library import TidaAcc
        from repro.tida.boundary import Dirichlet
        shape = (6, 6)
        rng = np.random.default_rng(0)
        x = rng.random(shape)
        lib = TidaAcc(machine)
        lib.add_array("x", shape, n_regions=2, halo=1)
        lib.add_array("y", shape, n_regions=2, halo=1)
        lib.scatter("x", x)
        lib.fill_boundary("x", Dirichlet(0.0))
        k = laplacian_kernel(2)
        for y_t, x_t in lib.iterator("y", "x").reset(gpu=True):
            lib.compute((y_t, x_t), k, gpu=True)
        A = assemble_laplacian_dense(shape)
        np.testing.assert_allclose(lib.gather("y"), (A @ x.ravel()).reshape(shape))


class TestSolver:
    @pytest.mark.parametrize("shape,n_regions", [((8, 8), 2), ((12,), 3), ((4, 4, 4), 2)])
    def test_matches_dense_solve(self, shape, n_regions):
        rng = np.random.default_rng(2)
        b = rng.random(shape)
        cg = TiledCG(shape, n_regions=n_regions)
        res = cg.solve(b, tol=1e-10)
        A = assemble_laplacian_dense(shape)
        x_ref = np.linalg.solve(A, b.ravel()).reshape(shape)
        assert res.converged
        np.testing.assert_allclose(res.x, x_ref, atol=1e-6)

    def test_residual_decreases(self):
        rng = np.random.default_rng(3)
        b = rng.random((10, 10))
        res = TiledCG((10, 10), n_regions=2).solve(b, tol=1e-10)
        r = res.residual_norms
        assert r[-1] < r[0] * 1e-6

    def test_zero_rhs_trivial(self):
        res = TiledCG((6, 6), n_regions=2).solve(np.zeros((6, 6)))
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_array_equal(res.x, 0.0)

    def test_converges_within_n_iterations(self):
        """Exact-arithmetic CG converges in <= n steps; allow slack for fp."""
        shape = (6, 6)
        b = np.ones(shape)
        res = TiledCG(shape, n_regions=2).solve(b, tol=1e-9)
        assert res.converged
        assert res.iterations <= 36 + 5

    def test_max_iterations_cap(self):
        b = np.ones((8, 8))
        res = TiledCG((8, 8), n_regions=2).solve(b, tol=1e-14, max_iterations=3)
        assert res.iterations == 3
        assert not res.converged

    def test_limited_memory_solve(self):
        """CG out-of-core: 2 slots per field, same answer."""
        shape = (8, 8)
        rng = np.random.default_rng(4)
        b = rng.random(shape)
        full = TiledCG(shape, n_regions=4).solve(b, tol=1e-10)
        lim = TiledCG(shape, n_regions=4, n_slots=2).solve(b, tol=1e-10)
        np.testing.assert_allclose(lim.x, full.x, atol=1e-9)

    def test_rhs_validation(self):
        cg = TiledCG((8, 8), n_regions=2)
        with pytest.raises(ReproError):
            cg.solve(np.zeros((4, 4)))
        with pytest.raises(ReproError):
            cg.solve(None)

    def test_timing_only_mode(self):
        cg = TiledCG((64, 64), n_regions=4, functional=False)
        res = cg.solve(None, max_iterations=5)
        assert res.iterations == 5
        assert res.x is None
        assert res.elapsed > 0

    def test_virtual_time_accounted(self):
        b = np.ones((8, 8))
        cg = TiledCG((8, 8), n_regions=2)
        res = cg.solve(b, tol=1e-9)
        assert res.elapsed > 0
        trace = cg.lib.trace
        assert len(trace.by_category("kernel")) > res.iterations  # matvec+axpy+reduce
