"""Closed-form estimates of TiDA-acc pipeline time.

Two regimes cover the paper's experiments:

* **streaming** (device memory holds a few regions, Figs. 7/8): each
  step moves every region in and out; with enough slots the three
  engines (H2D, D2H, compute) run concurrently, so the steady-state step
  time is the *maximum* of the three engine loads, plus the pipeline
  fill/drain of one region on each side.
* **resident** (everything fits, Figs. 5/6): transfers happen once
  around the time loop and overlap the first/last steps' compute; every
  step pays per-region kernel launches and (for stencils) the ghost
  exchange.

The estimates deliberately use only :class:`~repro.config.MachineSpec`
numbers and kernel cost metadata — no simulation — so they can drive an
autotuner, and ablation A3 quantifies how close they come to the
simulator (they ignore slot-collision bubbles and host API costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineSpec
from ..cuda.kernel import KernelSpec
from ..errors import ReproError


@dataclass(frozen=True)
class PipelineEstimate:
    """Breakdown of a predicted TiDA-acc run."""

    total: float            # predicted end-to-end seconds
    per_step: float         # steady-state seconds per time step
    h2d: float              # H2D engine load per step (streaming) or once (resident)
    d2h: float              # D2H engine load, same convention
    compute: float          # compute engine load per step
    ghost: float            # ghost-update cost per step (engine + launches)
    bottleneck: str         # which engine bounds the steady state

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ReproError("negative predicted time")


def _per_step_compute(
    machine: MachineSpec, kernel: KernelSpec, domain_cells: int, n_regions: int
) -> float:
    cells_per_region = domain_cells / n_regions
    body = kernel.duration_on_gpu(machine, int(round(cells_per_region)), tuned_geometry=True)
    return n_regions * (body + machine.gpu.kernel_launch_overhead)


def _ghost_per_step(
    machine: MachineSpec,
    domain_cells: int,
    n_regions: int,
    *,
    ghost_width: int,
    itemsize: int = 8,
) -> float:
    """Slab-decomposition ghost cost: 2 internal faces per interior region
    pair, copied on-device at memory bandwidth, plus one launch each."""
    if ghost_width == 0 or n_regions <= 1:
        return 0.0
    # slab decomposition along one axis: a face has domain_cells^(2/3)
    # cells for a cubical domain; generalized as domain_cells / extent.
    face_cells = domain_cells ** (2.0 / 3.0) * ghost_width
    pairs = 2 * (n_regions - 1)
    copy_bytes = 2 * itemsize * face_cells
    per_face = copy_bytes / machine.gpu.mem_bandwidth + machine.gpu.kernel_launch_overhead
    return pairs * per_face


def estimate_streaming(
    machine: MachineSpec,
    kernel: KernelSpec,
    *,
    domain_cells: int,
    steps: int,
    n_regions: int,
    fields: int = 1,
    itemsize: int = 8,
) -> PipelineEstimate:
    """Steady-state estimate when every region streams in and out each step."""
    if n_regions < 1 or steps < 1 or domain_cells < 1:
        raise ReproError("domain_cells, steps and n_regions must be positive")
    bytes_per_step = fields * domain_cells * itemsize
    link = machine.link
    h2d = n_regions * link.latency + bytes_per_step / link.h2d_bandwidth
    d2h = n_regions * link.latency + bytes_per_step / link.d2h_bandwidth
    compute = _per_step_compute(machine, kernel, domain_cells, n_regions)
    per_step = max(h2d, d2h, compute)
    bottleneck = {h2d: "h2d", d2h: "d2h", compute: "compute"}[per_step]
    # fill/drain: one region's upload before the first kernel, one
    # region's download after the last
    fringe = (bytes_per_step / n_regions) * (1.0 / link.h2d_bandwidth + 1.0 / link.d2h_bandwidth)
    total = steps * per_step + fringe
    return PipelineEstimate(
        total=total, per_step=per_step, h2d=h2d, d2h=d2h,
        compute=compute, ghost=0.0, bottleneck=bottleneck,
    )


def estimate_resident(
    machine: MachineSpec,
    kernel: KernelSpec,
    *,
    domain_cells: int,
    steps: int,
    n_regions: int,
    fields: int = 1,
    result_fields: int = 1,
    ghost_width: int = 0,
    itemsize: int = 8,
) -> PipelineEstimate:
    """Estimate when all regions stay device-resident across the run.

    Uploads overlap the first step's compute (pipelined per region);
    the final download overlaps nothing (it happens after the loop).
    """
    if n_regions < 1 or steps < 1 or domain_cells < 1:
        raise ReproError("domain_cells, steps and n_regions must be positive")
    link = machine.link
    upload_bytes = fields * domain_cells * itemsize
    h2d = n_regions * fields * link.latency + upload_bytes / link.h2d_bandwidth
    download_bytes = result_fields * domain_cells * itemsize
    d2h = n_regions * result_fields * link.latency + download_bytes / link.d2h_bandwidth
    compute = _per_step_compute(machine, kernel, domain_cells, n_regions)
    ghost = _ghost_per_step(
        machine, domain_cells, n_regions, ghost_width=ghost_width, itemsize=itemsize
    )
    per_step = compute + ghost
    # Per-region pipeline overlap: uploads interleave with the first step's
    # kernels, and the final downloads interleave with the last step's
    # kernels (each region downloads as soon as its last kernel finishes).
    per_region_h2d = h2d / n_regions
    per_region_step = per_step / n_regions
    if steps == 1:
        total = max(
            h2d,
            per_step + per_region_h2d,
            d2h + per_region_h2d + per_region_step,
        )
    else:
        first = max(h2d, per_step + per_region_h2d)
        last = max(per_step, d2h + per_region_step)
        total = first + (steps - 2) * per_step + last
    bottleneck = "h2d" if h2d > steps * per_step else "compute"
    return PipelineEstimate(
        total=total, per_step=per_step, h2d=h2d, d2h=d2h,
        compute=compute, ghost=ghost, bottleneck=bottleneck,
    )
