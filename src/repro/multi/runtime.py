"""Several simulated GPUs behind one host thread.

All devices share a single :class:`~repro.sim.engine.HostClock` (there is
one application thread issuing work, as in the paper's single-process
model) and a single trace with per-device lanes (``gpu0:compute``,
``gpu1:h2d``, ...), so cross-device timelines render in one Gantt chart.

Peer copies model PCIe P2P on Kepler-class parts: the transfer occupies
the *source* device's D2H engine and the *destination* device's H2D
engine for the full duration, at the link bandwidth (both engines sit on
the same PCIe root complex).
"""

from __future__ import annotations

from typing import Sequence

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.runtime import CudaRuntime
from ..cuda.stream import Stream
from ..errors import CudaInvalidValueError
from ..obs.metrics import MetricsRegistry
from ..sim.device import DeviceBuffer
from ..sim.engine import HostClock
from ..sim.trace import Trace


class MultiGpuRuntime:
    """N simulated devices + P2P copies."""

    def __init__(
        self,
        machine: MachineSpec | None = None,
        n_devices: int = 2,
        *,
        functional: bool = True,
        mode: str | None = None,
        device_memory_limit: int | None = None,
        check: str | bool | None = None,
        telemetry=None,
    ) -> None:
        if n_devices < 1:
            raise CudaInvalidValueError(f"n_devices must be >= 1, got {n_devices}")
        self.machine = machine if machine is not None else DEFAULT_MACHINE
        self.clock = HostClock()
        self.trace = Trace()
        # one metric space across devices (per-engine names stay distinct
        # through the lane prefixes)
        self.metrics = MetricsRegistry()
        # one checker across devices: a peer copy is a single op touching
        # two devices' streams, which only one clock space can order
        from ..check.hazards import resolve_checker

        self.checker = resolve_checker(check, trace=self.trace, metrics=self.metrics)
        self.devices: list[CudaRuntime] = [
            CudaRuntime(
                self.machine,
                functional=functional,
                mode=mode,
                device_memory_limit=device_memory_limit,
                clock=self.clock,
                trace=self.trace,
                metrics=self.metrics,
                lane_prefix=f"gpu{i}:",
                # check=False stops a device from resolving its own default
                # checker when this group runs unchecked
                **({"checker": self.checker} if self.checker is not None
                   else {"check": False}),
            )
            for i in range(n_devices)
        ]
        # one bus for the whole group: clock/trace/metrics are shared, so
        # attach once and let each device answer health()/notify through it
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self)
            if self.checker is not None:
                self.checker.telemetry = telemetry
            for dev in self.devices:
                dev.telemetry = telemetry

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def functional(self) -> bool:
        return self.devices[0].functional

    @property
    def mode(self) -> str:
        """``"functional"`` or ``"timing"`` (uniform across the group)."""
        return self.devices[0].mode

    def health(self) -> dict:
        """Group-wide health snapshot (see :meth:`CudaRuntime.health`)."""
        if self.telemetry is not None:
            return self.telemetry.health()
        return {
            "status": "unmonitored",
            "monitored": False,
            "now": self.clock.now,
            "samples": 0,
            "alerts": {"info": 0, "warning": 0, "critical": 0},
            "incidents": 0,
        }

    @property
    def now(self) -> float:
        return self.clock.now

    def device(self, index: int) -> CudaRuntime:
        if not 0 <= index < len(self.devices):
            raise CudaInvalidValueError(f"device index {index} out of range")
        return self.devices[index]

    def device_index_of(self, runtime: CudaRuntime) -> int:
        for i, dev in enumerate(self.devices):
            if dev is runtime:
                return i
        raise CudaInvalidValueError("runtime does not belong to this multi-GPU group")

    def peer_copy(
        self,
        dst_device: int,
        dst: DeviceBuffer,
        src_device: int,
        src: DeviceBuffer,
        *,
        dst_stream: Stream | None = None,
        src_stream: Stream | None = None,
        after: float | Sequence[float] = 0.0,
        label: str = "",
    ) -> float:
        """``cudaMemcpyPeerAsync``: device-to-device over the interconnect.

        Returns the virtual completion time.  The copy is ordered after
        both given streams' pending work (and ``after``), occupies the
        source D2H and destination H2D engines simultaneously, and pushes
        its completion onto both streams.
        """
        src_rt = self.device(src_device)
        dst_rt = self.device(dst_device)
        if src_rt is dst_rt:
            raise CudaInvalidValueError("peer_copy needs two distinct devices")
        for buf, rt in ((src, src_rt), (dst, dst_rt)):
            if buf.freed:
                raise CudaInvalidValueError("peer_copy involves a freed buffer")
            if buf.pool is not rt.pool:
                raise CudaInvalidValueError(
                    "peer_copy buffer does not live on the stated device"
                )
        if dst.nbytes != src.nbytes:
            raise CudaInvalidValueError(
                f"peer_copy byte-count mismatch: {src.nbytes} != {dst.nbytes}"
            )
        src_stream = src_stream if src_stream is not None else src_rt.default_stream
        dst_stream = dst_stream if dst_stream is not None else dst_rt.default_stream
        src_rt._check_stream(src_stream)
        dst_rt._check_stream(dst_stream)
        # host API cost once
        src_rt._api()
        link = self.machine.link
        duration = link.transfer_time(src.nbytes, direction="d2h", pinned=True)
        after_deps, after_max = CudaRuntime._after_deps(after)
        ready = max(self.clock.now, src_stream.tail, dst_stream.tail, after_max,
                    src_rt.d2h_engine.tail, dst_rt.h2d_engine.tail)
        start_a, end_a = src_rt.d2h_engine.submit(ready, duration)
        start_b, end_b = dst_rt.h2d_engine.submit(start_a, duration)
        end = max(end_a, end_b)
        src_stream._push(end)
        dst_stream._push(end)
        src_rt._note_queue_op(src_stream, src_rt.d2h_engine, end_a)
        dst_rt._note_queue_op(dst_stream, dst_rt.h2d_engine, end_b)
        self.metrics.inc("cuda.p2p_copies")
        self.metrics.inc("cuda.p2p_bytes", src.nbytes)
        self.trace.record(
            label or f"p2p:gpu{src_device}->gpu{dst_device}",
            "d2h",
            src_rt.d2h_engine.name,
            start_a,
            end_a,
            stream=src_stream.stream_id,
            nbytes=src.nbytes,
            peer=dst_device,
        )
        self.trace.record(
            label or f"p2p:gpu{src_device}->gpu{dst_device}",
            "h2d",
            dst_rt.h2d_engine.name,
            start_b,
            end_b,
            stream=dst_stream.stream_id,
            nbytes=src.nbytes,
            peer=src_device,
        )
        if src_rt.functional:
            dst.array.reshape(-1)[:] = src.array.reshape(-1)
        if self.checker is not None:
            self.checker.record_op(
                kind="peer",
                label=label or f"p2p:gpu{src_device}->gpu{dst_device}",
                streams=(
                    (src_rt._runtime_id, src_stream),
                    (dst_rt._runtime_id, dst_stream),
                ),
                engines=(src_rt.d2h_engine, dst_rt.h2d_engine),
                start=start_a, end=end, after=after_deps,
                reads=(src,), writes=(dst,), now=self.clock.now,
                nbytes=src.nbytes,
            )
        return end

    def synchronize_all(self) -> float:
        """Drain every device (``cudaDeviceSynchronize`` per device)."""
        end = self.clock.now
        for dev in self.devices:
            end = max(end, dev.device_synchronize())
        return end
