"""Simulator-speed gate: drift check, measurements, manifest, exit codes."""

import json

import pytest

from repro.bench import simspeed


class TestDriftCheck:
    def test_clean_workloads_pass(self):
        # tiny stand-in workloads so the smoke stays fast
        workloads = simspeed.DRIFT_WORKLOADS[:1]
        assert simspeed.drift_check(workloads) == []

    def test_drift_is_reported_per_part(self, monkeypatch):
        calls = {"n": 0}
        real = simspeed._fingerprint

        def flaky(res):
            calls["n"] += 1
            fp = real(res)
            if calls["n"] % 2 == 0:        # corrupt every timing fingerprint
                return (fp[0], fp[1], fp[2], fp[3] + 1.0)
            return fp

        monkeypatch.setattr(simspeed, "_fingerprint", flaky)
        failures = simspeed.drift_check(simspeed.DRIFT_WORKLOADS[:1])
        assert failures and "elapsed" in failures[0]


class TestMeasurements:
    def test_modes_report_all_three(self):
        out = simspeed.measure_modes(
            dict(shape=(48, 16, 16), steps=2, n_regions=8, n_slots=4))
        for mode in ("functional", "timing", "replay"):
            assert out[f"{mode}_ops_per_s"] > 0
        assert out["device_ops"] > 0
        # timing skips numerics, replay skips simulation: strictly ordered
        assert (out["replay_ops_per_s"] > out["timing_ops_per_s"]
                > out["functional_ops_per_s"])

    def test_conformance_sweep_speedup(self):
        out = simspeed.measure_conformance_sweep(timing_seeds=(0, 1, 2, 3))
        assert out["legs"] == 8            # 2 variants x 4 seeds
        assert out["speedup"] > 1.0

    def test_machine_sweep_speedup(self):
        out = simspeed.measure_machine_sweep(n_candidates=6)
        assert out["candidates"] == 6
        assert out["speedup"] > 1.0


class TestRunAndGate:
    @pytest.fixture
    def canned(self, monkeypatch):
        """Replace the heavy measurements; keep the real manifest logic."""
        monkeypatch.setattr(simspeed, "drift_check", lambda: [])
        monkeypatch.setattr(simspeed, "measure_modes", lambda: {
            "device_ops": 100.0,
            "functional_wall_s": 1.0, "functional_ops_per_s": 100.0,
            "timing_wall_s": 0.01, "timing_ops_per_s": 10_000.0,
            "replay_wall_s": 0.001, "replay_ops_per_s": 100_000.0,
            "timing_speedup": 100.0, "replay_speedup": 1000.0,
        })
        sweeps = {"conf": 25.0, "mach": 14.0}
        monkeypatch.setattr(simspeed, "measure_conformance_sweep", lambda: {
            "legs": 64.0, "full_wall_s": 2.5, "replay_wall_s": 0.1,
            "speedup": sweeps["conf"],
        })
        monkeypatch.setattr(simspeed, "measure_machine_sweep", lambda: {
            "candidates": 96.0, "measure_wall_s": 0.4, "replay_wall_s": 0.03,
            "speedup": sweeps["mach"],
        })
        return sweeps

    def test_manifest_clamps_gated_counters(self, canned, tmp_path):
        out = tmp_path / "simspeed.json"
        assert simspeed.run(out) == 0
        manifest = json.loads(out.read_text())
        counters = manifest["metrics"]["counters"]
        assert counters["bench.simspeed.timing_speedup"] == \
            simspeed.TIMING_SPEEDUP_CEILING
        assert counters["bench.simspeed.replay_speedup"] == \
            simspeed.REPLAY_SPEEDUP_CEILING
        assert counters["bench.simspeed.conformance_sweep_speedup"] == \
            simspeed.SWEEP_SPEEDUP_CEILING
        assert counters["bench.simspeed.machine_sweep_speedup"] == \
            simspeed.SWEEP_SPEEDUP_CEILING
        # the raw, unclamped numbers stay inspectable but ungated
        assert manifest["simspeed"]["conformance_sweep"]["speedup"] == 25.0
        assert manifest["schema"] == "repro-run-manifest/1"

    def test_drift_exits_one(self, canned, monkeypatch, tmp_path):
        monkeypatch.setattr(simspeed, "drift_check",
                            lambda: ["heat: trace differs between modes"])
        assert simspeed.run(tmp_path / "m.json") == 1

    def test_floor_miss_exits_two(self, canned, monkeypatch, tmp_path):
        monkeypatch.setattr(simspeed, "measure_machine_sweep", lambda: {
            "candidates": 96.0, "measure_wall_s": 0.4, "replay_wall_s": 0.06,
            "speedup": simspeed.SWEEP_SPEEDUP_FLOOR - 1.0,
        })
        out = tmp_path / "m.json"
        assert simspeed.run(out) == 2
        # the manifest is still written, so the miss is inspectable
        assert out.exists()

    def test_committed_baseline_sits_at_the_ceilings(self):
        from pathlib import Path

        baseline = json.loads(
            Path(__file__).resolve().parents[2]
            .joinpath("BENCH_simspeed.json").read_text())
        counters = baseline["metrics"]["counters"]
        assert counters["bench.simspeed.conformance_sweep_speedup"] == \
            simspeed.SWEEP_SPEEDUP_CEILING
        assert counters["bench.simspeed.machine_sweep_speedup"] == \
            simspeed.SWEEP_SPEEDUP_CEILING
