"""Ablation A2: PCIe Gen3 vs NVLink (paper intro: >=5x link speed)."""

from repro.bench import figures


def test_ablation_interconnect(run_once, results_dir):
    table = run_once(figures.ablation_interconnect)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a2.json")

    pcie = table.row_by("interconnect", "pcie-gen3-x16")
    nvlink = table.row_by("interconnect", "nvlink-1.0")
    # NVLink shrinks the 1-step transfer-dominated runtimes dramatically
    assert nvlink[1] < pcie[1] / 3
    assert nvlink[2] < pcie[2]
    # the *absolute* time TiDA-acc's overlap saves shrinks with the faster
    # link: there is 5x less transfer latency to hide
    pcie_saved = pcie[1] - pcie[2]
    nvlink_saved = nvlink[1] - nvlink[2]
    assert 0 < nvlink_saved < pcie_saved / 3
