"""Multi-tenant isolation: multiplexed jobs are bit-equal to solo runs.

The service's whole contract is that sharing one device (and one hazard
checker, armed ``strict``) with other tenants is *invisible* to a job's
results: every digest must match the same program run alone on a
dedicated service, and the checker must never see a racy pair between
co-scheduled jobs.  Hypothesis drives randomized mixes — tenant counts,
workload draws, seeds, arrival times, weights — through a shared
service and differentially compares every job against its solo run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import Service, run_solo

#: Small, fast workload configurations for randomized mixes.
WORKLOADS = (
    ("heat", {"shape": (16, 8, 8), "steps": 1}),
    ("wave", {"shape": (16, 16), "steps": 2}),
    ("compute", {"shape": (8, 8, 8), "steps": 1, "kernel_iteration": 256}),
    ("coeff-heat", {"shape": (16, 8, 8), "steps": 1}),
)


def job_mixes():
    """Strategy: a list of (tenant, workload index, seed, arrival time)."""
    job = st.tuples(
        st.integers(0, 2),                      # tenant index
        st.integers(0, len(WORKLOADS) - 1),     # workload
        st.integers(0, 3),                      # input seed
        st.floats(0.0, 2e-3),                   # arrival time
    )
    return st.lists(job, min_size=2, max_size=4)


def run_mix(mix, **service_kwargs):
    svc = Service(**service_kwargs)
    weights = (2.0, 1.0, 1.0)
    for i in range(3):
        svc.add_tenant(f"t{i}", weights[i], priority=(i == 0))
    jobs = {}
    for tenant_i, wl_i, seed, at in mix:
        name, kwargs = WORKLOADS[wl_i]
        jid = svc.submit(f"t{tenant_i}", workload=name,
                         workload_kwargs=dict(kwargs, seed=seed), at=at)
        jobs[jid] = (f"t{tenant_i}", name, dict(kwargs, seed=seed))
    report = svc.run()
    svc.close()
    return report, jobs


class TestIsolation:
    @given(job_mixes())
    @settings(max_examples=8, deadline=None)
    def test_multiplexed_jobs_byte_identical_to_solo(self, mix):
        report, jobs = run_mix(mix)
        assert report.racy_hazards == 0
        for jid, (tenant, name, kwargs) in jobs.items():
            solo = run_solo(tenant, workload=name, workload_kwargs=kwargs)
            assert report.jobs[jid].digests == solo.digests, (
                f"{jid} ({name}) diverged from its solo run"
            )

    @given(job_mixes())
    @settings(max_examples=6, deadline=None)
    def test_zero_racy_hazards_under_strict_check(self, mix):
        # check="strict" raises on any racy pair at the point of conflict;
        # surviving the run means the schedule carried proof of ordering
        report, _jobs = run_mix(mix, check="strict")
        assert report.racy_hazards == 0

    def test_shared_clock_does_not_skew_digests_across_schedulers(self):
        mix = [(0, 0, 0, 0.0), (1, 2, 1, 0.0), (2, 1, 2, 1e-3), (0, 3, 0, 1e-3)]
        fair, fair_jobs = run_mix(mix)
        serial, serial_jobs = run_mix(mix, scheduler="serial")
        fair_digests = sorted(r.digests.items() for r in fair.jobs.values())
        serial_digests = sorted(r.digests.items() for r in serial.jobs.values())
        assert fair_digests == serial_digests

    def test_dedup_borrowing_is_invisible_to_results(self):
        # two tenants share one proven read-only coefficient table; the
        # borrower must still produce the donor's exact bits
        svc = Service(total_slots=32)
        svc.add_tenant("donor")
        svc.add_tenant("borrower")
        kw = {"shape": (32, 16, 16), "steps": 2, "seed": 0}
        for tenant, at in (("donor", 0.0), ("borrower", 2e-4)):
            svc.submit(tenant, workload="coeff-heat", workload_kwargs=kw,
                       at=at, n_regions=8)
        report = svc.run()
        svc.close()
        results = list(report.jobs.values())
        assert any(r.shared_fields for r in results), "dedup never engaged"
        assert results[0].digests == results[1].digests
        solo = run_solo("donor", workload="coeff-heat", workload_kwargs=kw,
                        n_regions=8)
        for r in results:
            assert r.digests == solo.digests
        assert report.racy_hazards == 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
