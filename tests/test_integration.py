"""End-to-end integration tests across every layer of the stack."""

import numpy as np
import pytest

from repro import (
    Dirichlet,
    Neumann,
    Periodic,
    TidaAcc,
    blur_kernel,
    heat_kernel,
    wave_kernel,
)
from repro.baselines.common import apply_bc_global, default_init
from repro.kernels.blur import blur_reference_step
from repro.kernels.wave import wave_reference_step


def reference_blur(initial_interior, steps, bc, ghost=1):
    full = np.zeros(tuple(s + 2 * ghost for s in initial_interior.shape))
    full[ghost:-ghost, ghost:-ghost] = initial_interior
    for _ in range(steps):
        apply_bc_global(full, ghost, bc)
        full = blur_reference_step(full, ghost=ghost)
    return full[ghost:-ghost, ghost:-ghost].copy()


def reference_wave(u0, steps, bc, c2=0.25, ghost=1):
    shape = u0.shape
    full_u = np.zeros(tuple(s + 2 * ghost for s in shape))
    full_u[ghost:-ghost, ghost:-ghost] = u0
    full_prev = full_u.copy()
    for _ in range(steps):
        apply_bc_global(full_u, ghost, bc)
        nxt = wave_reference_step(full_u, full_prev, c2=c2, ghost=ghost)
        full_prev, full_u = full_u, nxt
    return full_u[ghost:-ghost, ghost:-ghost].copy()


class TestBlurPipeline:
    """2-D image blur: corner ghosts, 2-D decomposition, GPU path."""

    @pytest.mark.parametrize("bc", [Periodic(), Neumann(), Dirichlet(0.0)])
    @pytest.mark.parametrize("region_shape", [(8, 8), (4, 16), (16, 4)])
    def test_matches_reference(self, machine, bc, region_shape):
        shape = (16, 16)
        img = default_init(shape, 0)
        lib = TidaAcc(machine)
        lib.add_array("img", shape, region_shape=region_shape, halo=1)
        lib.add_array("out", shape, region_shape=region_shape, halo=1)
        lib.scatter("img", img)
        k = blur_kernel()
        steps = 3
        for _ in range(steps):
            lib.fill_boundary("img", bc)
            for dst_t, src_t in lib.iterator("out", "img").reset(gpu=True):
                lib.compute((dst_t, src_t), k, gpu=True)
            lib.swap("img", "out")
        np.testing.assert_allclose(lib.gather("img"), reference_blur(img, steps, bc))


class TestWaveThreeFields:
    """Three-array compute + three-way field rotation."""

    def test_matches_reference(self, machine):
        shape = (20, 20)
        rng = np.random.default_rng(5)
        u0 = rng.random(shape)
        lib = TidaAcc(machine)
        for name in ("u_next", "u", "u_prev"):
            lib.add_array(name, shape, n_regions=4, halo=1)
        lib.scatter("u", u0)
        lib.scatter("u_prev", u0)
        k = wave_kernel(2)
        bc = Neumann()
        steps = 4
        for _ in range(steps):
            lib.fill_boundary("u", bc)
            it = lib.iterator("u_next", "u", "u_prev").reset(gpu=True)
            while it.is_valid():
                lib.compute(it, k, gpu=True, params={"c2": 0.25})
                it.next()
            # rotate: prev <- u, u <- next, next <- old prev
            lib.swap("u_prev", "u")     # u_prev=u_old... names rotate below
            lib.swap("u", "u_next")
        ref = reference_wave(u0, steps, bc)
        np.testing.assert_allclose(lib.gather("u"), ref)


class TestLongMixedRun:
    def test_heat_gpu_cpu_alternation_with_eviction(self, machine):
        """40 steps alternating GPU/CPU phases under a 2-slot memory limit,
        checked against the reference — the harshest coherence test."""
        from repro.baselines.common import reference_heat
        shape = (16, 8, 8)
        init = default_init(shape, 1)
        lib = TidaAcc(machine)
        lib.add_array("old", shape, n_regions=4, halo=1, n_slots=2)
        lib.add_array("new", shape, n_regions=4, halo=1, n_slots=2)
        lib.field("old").from_global(init[1:-1, 1:-1, 1:-1])
        lib.field("new").from_global(init[1:-1, 1:-1, 1:-1])
        k = heat_kernel(3)
        steps = 40
        for step in range(steps):
            gpu = (step % 3) != 2   # two GPU steps, one CPU step, repeat
            lib.fill_boundary("old", Neumann())
            for dst_t, src_t in lib.iterator("new", "old").reset(gpu=gpu):
                lib.compute((dst_t, src_t), k, gpu=gpu, params={"coef": 0.1})
            lib.swap("old", "new")
        ref = reference_heat(init, steps, coef=0.1, bc=Neumann(), ghost=1)
        np.testing.assert_allclose(lib.gather("old"), ref)

    def test_trace_is_complete_and_consistent(self, machine):
        """Every recorded event is well-formed; engine lanes never overlap."""
        lib = TidaAcc(machine, functional=False)
        lib.add_array("u", (64, 64, 64), n_regions=4, halo=1, n_slots=2)
        k = heat_kernel(3)
        lib.add_array("v", (64, 64, 64), n_regions=4, halo=1, n_slots=2)
        for _ in range(3):
            lib.fill_boundary("u", Neumann())
            for dst_t, src_t in lib.iterator("v", "u").reset(gpu=True):
                lib.compute((dst_t, src_t), k, gpu=True)
            lib.swap("u", "v")
        lib.manager("u").flush_to_host()
        for lane in ("compute", "h2d", "d2h"):
            events = sorted(lib.trace.by_lane(lane), key=lambda e: e.start)
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12, f"{lane} engine double-booked"

    def test_in_stream_order_preserved(self, machine):
        """Events on one stream never overlap each other (FIFO property)."""
        lib = TidaAcc(machine, functional=False)
        lib.add_array("u", (64, 64, 64), n_regions=8, halo=0, n_slots=2)
        from repro.kernels.compute_intensive import compute_intensive_kernel
        k = compute_intensive_kernel(4)
        for _ in range(3):
            for (tile,) in lib.iterator("u").reset(gpu=True):
                lib.compute(tile, k, gpu=True)
        streams = {e.stream for e in lib.trace if e.stream is not None}
        for sid in streams:
            events = sorted(
                (e for e in lib.trace if e.stream == sid), key=lambda e: e.start
            )
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12


class TestPublicApiSurface:
    def test_docstring_example_runs(self):
        """The __init__ docstring example, verbatim in spirit."""
        from repro import TidaAcc, heat_kernel, Neumann
        lib = TidaAcc()
        lib.add_array("u_old", (8, 8, 8), n_regions=2, halo=1, fill=1.0)
        lib.add_array("u_new", (8, 8, 8), n_regions=2, halo=1)
        kernel = heat_kernel(ndim=3)
        for _step in range(2):
            lib.fill_boundary("u_old", Neumann())
            it = lib.iterator("u_new", "u_old").reset(gpu=True)
            while it.is_valid():
                lib.compute(it, kernel, params={"coef": 0.1})
                it.next()
            lib.swap("u_old", "u_new")
        result = lib.gather("u_old")
        assert result.shape == (8, 8, 8)
        np.testing.assert_allclose(result, 1.0)  # constant field fixed point
        assert lib.now > 0

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name) is not None
