"""End-to-end resilience: retries, recovery, degradation, exhaustion.

These tests drive the fault plans through the real stack — runtime,
TileAcc, TidaAcc, the heat runner — and check the headline guarantees:
recovery is byte-identical, exhaustion flushes surviving data, OOM
degrades gracefully, and every outcome is visible in the metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import default_init
from repro.baselines.tida_runners import run_tida_heat
from repro.core.library import TidaAcc
from repro.core.slots import DEVICE, HOST
from repro.core.tile_acc import TileAcc
from repro.cuda.runtime import CudaRuntime
from repro.errors import CudaTransferError, FaultError
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.openacc.runtime import AccRuntime
from repro.tida.tile_array import TileArray

SPEC = "h2d:p=0.05; d2h:p=0.05; launch:p=0.03; seed=11"


def make_stack(machine, *, n_regions=4, shape=(16,), device_memory_limit=None,
               faults=None, retry=None):
    rt = CudaRuntime(machine, functional=True,
                     device_memory_limit=device_memory_limit, faults=faults)
    acc = AccRuntime(rt)
    ta = TileArray(shape, n_regions=n_regions, runtime=rt, label="f")
    mgr = TileAcc(rt, acc, ta, retry=retry)
    return rt, acc, ta, mgr


def counters(res):
    return res.metrics["counters"]


class TestByteIdenticalRecovery:
    def test_faulted_heat_matches_fault_free(self, machine):
        kwargs = dict(shape=(48, 48), steps=4, n_regions=4, functional=True)
        clean = run_tida_heat(machine, **kwargs)
        faulted = run_tida_heat(
            machine, **kwargs,
            faults=FaultPlan.from_spec(SPEC), retry=RetryPolicy(max_attempts=5),
        )
        assert counters(faulted)["faults.injected"] > 0
        assert counters(faulted)["faults.recovered"] > 0
        assert np.array_equal(clean.result, faulted.result)
        # recovery costs virtual time (backoff + re-issue), never corrupts data
        assert faulted.elapsed > clean.elapsed

    def test_faulted_run_is_deterministic(self, machine):
        def run():
            return run_tida_heat(
                machine, shape=(48, 48), steps=3, n_regions=4, functional=True,
                faults=FaultPlan.from_spec(SPEC), retry=RetryPolicy(max_attempts=5),
            )

        a, b = run(), run()
        assert a.elapsed == b.elapsed
        assert counters(a) == counters(b)
        assert np.array_equal(a.result, b.result)

    def test_launch_fault_recovers(self, machine):
        plan = FaultPlan([FaultRule(op="launch", nth=1)])
        clean = run_tida_heat(machine, shape=(32, 32), steps=2, n_regions=4,
                              functional=True)
        faulted = run_tida_heat(machine, shape=(32, 32), steps=2, n_regions=4,
                                functional=True, faults=plan,
                                retry=RetryPolicy(max_attempts=3))
        assert counters(faulted)["faults.injected.launch"] == 1
        assert counters(faulted)["faults.recovered"] >= 1
        assert np.array_equal(clean.result, faulted.result)

    def test_unarmed_plan_fails_fast(self, machine):
        """No retry policy -> the injected CudaError propagates raw."""
        with pytest.raises(CudaTransferError):
            run_tida_heat(machine, shape=(32, 32), steps=1, n_regions=4,
                          functional=True,
                          faults=FaultPlan([FaultRule(op="h2d", nth=1)]))


class TestTransferRetry:
    def test_third_h2d_on_field_retried(self, machine):
        plan = FaultPlan([FaultRule(op="h2d", field="f", nth=3)])
        rt, _, ta, mgr = make_stack(machine, faults=plan,
                                    retry=RetryPolicy(max_attempts=3))
        for rid in range(4):
            ta.region(rid).data.array[...] = float(rid)
        for rid in range(4):
            mgr.request_device(rid)
        assert rt.metrics.value("faults.injected") == 1
        assert rt.metrics.value("faults.retries.f") == 1
        assert rt.metrics.value("faults.recovered.f") == 1
        # every region made it to the device with its data intact
        for rid in range(4):
            mgr.request_host(rid)
            assert np.all(ta.region(rid).data.array == float(rid))

    def test_retry_marks_in_trace(self, machine):
        plan = FaultPlan([FaultRule(op="h2d", nth=1)])
        rt, _, _, mgr = make_stack(machine, faults=plan,
                                   retry=RetryPolicy(max_attempts=3))
        mgr.request_device(0)
        names = [m["name"] for m in rt.trace.marks]
        assert "fault-inject" in names
        assert "fault-retry" in names
        assert "fault-recovered" in names


class TestExhaustion:
    def test_exhaustion_flushes_survivors_and_raises(self, machine):
        # region 2's upload fails on every attempt; the flush path would
        # also be killed by the d2h rule were injection not suspended
        plan = FaultPlan([
            FaultRule(op="h2d", field="r2"),
            FaultRule(op="d2h"),
        ])
        rt, _, ta, mgr = make_stack(machine, faults=plan,
                                    retry=RetryPolicy(max_attempts=2))
        for rid in range(4):
            ta.region(rid).data.array[...] = float(rid)
        mgr.request_device(0)
        mgr.request_device(1)
        assert mgr.location(0) == DEVICE and mgr.location(1) == DEVICE

        with pytest.raises(FaultError) as exc_info:
            mgr.request_device(2)
        err = exc_info.value
        assert (err.op, err.field, err.region, err.attempts) == ("h2d", "f", 2, 2)
        assert isinstance(err.__cause__, CudaTransferError)
        # survivors were downloaded despite the standing d2h rule
        assert mgr.location(0) == HOST and mgr.location(1) == HOST
        for rid in (0, 1):
            assert np.all(ta.region(rid).data.array == float(rid))
        assert rt.metrics.value("faults.retries") == 1  # one backoff, then give up

    def test_launch_exhaustion_flushes_all_fields(self, machine):
        plan = FaultPlan([FaultRule(op="launch")])
        lib = TidaAcc(machine, functional=True, faults=plan,
                      retry=RetryPolicy(max_attempts=2))
        lib.add_array("u_old", (32, 32), n_regions=4, halo=1)
        lib.add_array("u_new", (32, 32), n_regions=4, halo=1)
        init = default_init((32, 32), 0)
        lib.field("u_old").from_global(init)
        lib.field("u_new").from_global(init)

        from repro.kernels.heat import heat_kernel
        it = lib.iterator("u_new", "u_old").reset(gpu=True)
        with pytest.raises(FaultError) as exc_info:
            lib.compute(it, heat_kernel(2), params={"coef": 0.1})
        assert exc_info.value.op == "launch"
        for name in ("u_old", "u_new"):
            mgr = lib.manager(name)
            assert all(loc == HOST for loc in mgr._location)
        # host data survived untouched (the kernel never ran to completion)
        # and gather() is still consistent after the failure
        assert np.array_equal(lib.gather("u_old"), init)


class TestGracefulDegradation:
    def test_oom_pressure_shrinks_pool_and_disables_prefetch(self, machine):
        region_bytes = (16 // 4) * 8
        plan = FaultPlan([
            FaultRule(op="malloc", kind="pressure", oom_bytes=2 * region_bytes - 4),
        ])
        rt, _, ta, mgr = make_stack(
            machine, device_memory_limit=4 * region_bytes + 8,
            faults=plan, retry=RetryPolicy(max_attempts=3),
        )
        assert mgr.n_slots == 4 and mgr.prefetch_enabled
        for rid in range(4):
            ta.region(rid).data.array[...] = float(rid)
        for rid in range(4):
            mgr.request_device(rid)  # pressure forces the pool to shrink
        assert mgr.n_slots < 4
        assert mgr.prefetch_enabled is False
        assert rt.metrics.value("faults.degraded.f") >= 1
        assert mgr.prefetch(0) is False  # degraded mode refuses speculation
        for rid in range(4):
            mgr.request_host(rid)
            assert np.all(ta.region(rid).data.array == float(rid))

    def test_oom_without_retry_policy_propagates(self, machine):
        region_bytes = (16 // 4) * 8
        plan = FaultPlan([
            FaultRule(op="malloc", kind="pressure", oom_bytes=2 * region_bytes - 4),
        ])
        from repro.errors import CudaMemoryAllocationError
        rt, _, _, mgr = make_stack(machine, device_memory_limit=4 * region_bytes + 8,
                                   faults=plan, retry=None)
        mgr.request_device(0)
        mgr.request_device(1)
        with pytest.raises(CudaMemoryAllocationError):
            mgr.request_device(2)


class TestHangs:
    def test_sync_hang_costs_virtual_time(self, machine):
        plan = FaultPlan([FaultRule(op="sync", kind="hang",
                                    hang_seconds=0.005, nth=1)])
        rt, _, _, mgr = make_stack(machine, faults=plan)
        mgr.request_device(0)
        before = rt.now
        mgr.request_host(0)  # d2h + stream_synchronize: the sync hangs
        assert rt.now >= before + 0.005
        assert rt.metrics.value("faults.hang_seconds") == pytest.approx(0.005)
        assert rt.metrics.value("faults.injected.sync") == 1

    def test_copy_hang_stretches_transfer(self, machine):
        plan = FaultPlan([FaultRule(op="h2d", kind="hang",
                                    hang_seconds=0.004, nth=1)])
        rt_hang, _, _, mgr_hang = make_stack(machine, faults=plan)
        rt_ref, _, _, mgr_ref = make_stack(machine)
        _, end_hang = mgr_hang.request_device(0)
        _, end_ref = mgr_ref.request_device(0)
        assert end_hang == pytest.approx(end_ref + 0.004)


class TestContextManager:
    def test_with_statement_flushes_and_frees(self, machine):
        init = default_init((32, 32), 0)
        with TidaAcc(machine, functional=True) as lib:
            lib.add_array("u", (32, 32), n_regions=4)
            lib.field("u").from_global(init)
            for rid in range(4):
                lib.manager("u").request_device(rid)
        mgr = lib.manager("u")
        assert all(slot.buffer is None for slot in mgr.slots)
        assert all(loc == HOST for loc in mgr._location)
        assert np.array_equal(lib.field("u").to_global(), init)

    def test_exit_runs_even_after_exception(self, machine):
        with pytest.raises(RuntimeError):
            with TidaAcc(machine, functional=True) as lib:
                lib.add_array("u", (32, 32), n_regions=4)
                lib.manager("u").request_device(0)
                raise RuntimeError("boom")
        assert all(slot.buffer is None for slot in lib.manager("u").slots)


class TestDeprecatedAliases:
    def test_malloc_host_alias_warns(self, runtime):
        with pytest.warns(DeprecationWarning, match="malloc_pinned"):
            buf = runtime.malloc_host((8,), np.float64)
        assert buf.pinned

    def test_host_malloc_alias_warns(self, runtime):
        with pytest.warns(DeprecationWarning, match="malloc_pageable"):
            buf = runtime.host_malloc((8,), np.float64)
        assert not buf.pinned

    def test_tile_acc_policy_kwarg_warns(self, machine):
        rt = CudaRuntime(machine, functional=True)
        acc = AccRuntime(rt)
        ta = TileArray((16,), n_regions=4, runtime=rt, label="f")
        with pytest.warns(DeprecationWarning, match="eviction"):
            mgr = TileAcc(rt, acc, ta, policy="modulo")
        assert type(mgr.policy).__name__ == "ModuloPolicy"

    def test_add_array_policy_kwarg_warns(self, machine):
        lib = TidaAcc(machine, functional=True)
        with pytest.warns(DeprecationWarning, match="eviction"):
            lib.add_array("u", (16,), n_regions=4, policy="modulo")

    def test_new_names_are_warning_free(self, machine, recwarn):
        rt = CudaRuntime(machine, functional=True)
        rt.malloc_pinned((8,), np.float64)
        rt.malloc_pageable((8,), np.float64)
        lib = TidaAcc(machine, functional=True, eviction="modulo")
        lib.add_array("u", (16,), n_regions=4, eviction="lru")
        assert not [w for w in recwarn if w.category is DeprecationWarning]
